"""Semantic analysis: AST → logical plan.

The planner resolves columns against the catalog, converts TABLESAMPLE
clauses into :mod:`repro.sampling` methods, extracts equi-join
conditions from the WHERE conjunction, builds a left-deep join tree
(cross products where tables are unconnected), and applies the residual
predicate on top.  Aggregate select lists become an
:class:`~repro.relational.plan.Aggregate` (or a
:class:`~repro.relational.plan.GroupAggregate` under GROUP BY, with
HAVING rewritten onto the grouped output schema); pure-expression lists
become a :class:`~repro.relational.plan.Project`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PlanError, SchemaError, SQLError
from repro.relational import expressions as e
from repro.relational import plan as p
from repro.sampling import (
    Bernoulli,
    BlockBernoulli,
    BlockWithoutReplacement,
    CoordinatedBernoulli,
    LineageHashBernoulli,
    WithoutReplacement,
)
from repro.sql import ast_nodes as ast
from repro.versions.plan import VersionDiff
from repro.versions.snapshots import base_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database


def plan_query(query: ast.SelectQuery, db: "Database") -> p.PlanNode:
    """Turn a parsed query into an executable plan.

    The error-budget clause and ``EXPLAIN SAMPLING`` prefix are not part
    of the plan — the database routes them to the sampling-plan
    optimizer — but they only make sense on aggregate queries, which is
    validated here.
    """
    if (query.budget is not None or query.explain_sampling) and (
        not query.has_aggregates
    ):
        raise SQLError(
            "WITHIN/CONFIDENCE budgets and EXPLAIN SAMPLING apply to "
            "aggregate queries only"
        )
    if (query.budget is not None or query.explain_sampling) and query.group_by:
        raise SQLError(
            "WITHIN/CONFIDENCE budgets and EXPLAIN SAMPLING are not yet "
            "supported for GROUP BY queries; the optimizer targets a "
            "single aggregate's interval"
        )
    if query.explain_analyze and (
        query.budget is not None or query.explain_sampling
    ):
        raise SQLError(
            "EXPLAIN ANALYZE traces one plain execution; it cannot be "
            "combined with EXPLAIN SAMPLING or a WITHIN/CONFIDENCE "
            "budget (the optimizer runs many plans)"
        )
    return _Planner(query, db).plan()


def build_sampling_method(clause: ast.SampleClause):
    """Instantiate the sampling operator for a TABLESAMPLE clause."""
    if clause.kind == "percent":
        if clause.repeatable_seed is not None:
            return LineageHashBernoulli(
                clause.amount / 100.0, seed=clause.repeatable_seed
            )
        return Bernoulli.from_percent(clause.amount)
    if clause.kind == "rows":
        if clause.repeatable_seed is not None:
            raise SQLError(
                "REPEATABLE is only supported for PERCENT (Bernoulli) "
                "sampling; fixed-size draws have no per-tuple hash form"
            )
        return WithoutReplacement(int(clause.amount))
    if clause.kind == "system_percent":
        assert clause.rows_per_block is not None
        return BlockBernoulli(clause.amount / 100.0, clause.rows_per_block)
    if clause.kind == "system_blocks":
        assert clause.rows_per_block is not None
        return BlockWithoutReplacement(
            int(clause.amount), clause.rows_per_block
        )
    raise SQLError(f"unknown sample clause kind {clause.kind!r}")


class _Planner:
    def __init__(self, query: ast.SelectQuery, db: "Database") -> None:
        self.query = query
        self.db = db
        # column name -> owning (internal, possibly versioned) table name
        self.column_owner: dict[str, str] = {}
        # alias or base name -> internal table name
        self.aliases: dict[str, str] = {}
        # internal catalog names, aligned with query.tables
        self.internal_names: list[str] = []

    # -- entry point ---------------------------------------------------------

    def plan(self) -> p.PlanNode:
        if any(ref.is_diff for ref in self.query.tables):
            return self._plan_version_diff()
        self._resolve_tables()
        join_conds, filters = self._split_where()
        tree = self._build_join_tree(join_conds)
        if filters:
            tree = p.Select(tree, e.and_(*filters))
        if self.query.group_by:
            return self._group_aggregate(tree)
        if self.query.has_aggregates:
            return p.Aggregate(tree, self._agg_specs())
        return p.Project(tree, self._projection_outputs(tree))

    # -- version differences -----------------------------------------------

    def _plan_version_diff(self) -> VersionDiff:
        """Plan ``... FROM t AT VERSION hi MINUS AT VERSION lo``.

        The difference form is an aggregate estimator, not a relation:
        per-key aggregate inputs from the two sides are subtracted and
        scaled by the shared coordinated-Bernoulli rate, so only
        subset-sum aggregates (SUM/COUNT) survive, and the only legal
        sample is ``PERCENT ... REPEATABLE`` (the seed keys the hash
        both sides share).
        """
        query = self.query
        if len(query.tables) != 1:
            raise SQLError(
                "a version difference must be the only FROM entry; "
                "joining against a difference is outside the GUS algebra"
            )
        ref = query.tables[0]
        if query.budget is not None or query.explain_sampling:
            raise SQLError(
                "WITHIN/CONFIDENCE budgets and EXPLAIN SAMPLING are not "
                "supported on version differences; the coordinated "
                "estimator carries its own closed-form variance"
            )
        if not query.has_aggregates:
            raise SQLError(
                "a version difference is an aggregate form; SELECT "
                "SUM/COUNT (optionally with GROUP BY) over it"
            )
        base = ref.name
        try:
            hi_name = self.db.resolve_version(base, ref.version)
            lo_name = self.db.resolve_version(base, ref.minus_version)
        except SchemaError as exc:
            raise SQLError(str(exc)) from None
        hi_table = self.db.tables[hi_name]
        lo_table = self.db.tables[lo_name]
        self.internal_names.append(hi_name)
        if ref.alias:
            self.aliases[ref.alias] = hi_name
        self.aliases[base] = hi_name
        for column in hi_table.schema.names:
            self.column_owner[column] = hi_name

        rate: float | None = None
        seed: int | None = None
        if ref.sample is not None:
            clause = ref.sample
            if clause.kind != "percent" or clause.repeatable_seed is None:
                raise SQLError(
                    "version differences need coordinated Bernoulli "
                    "draws; the only supported sample is "
                    "'TABLESAMPLE (p PERCENT) REPEATABLE (seed)' "
                    "(the seed keys the per-row hash both sides share)"
                )
            rate = clause.amount / 100.0
            seed = clause.repeatable_seed

        _joins, filters = self._split_where()

        if query.group_by:
            grouped = self._group_aggregate(p.Scan(hi_name))
            keys: tuple[str, ...] = grouped.keys
            specs = list(grouped.specs)
            having = grouped.having
        else:
            keys = ()
            specs = self._agg_specs()
            having = None
        for spec in specs:
            if spec.kind == "avg":
                raise SQLError(
                    "AVG over a version difference is a ratio of two "
                    "estimates, not a subset sum; estimate SUM and "
                    "COUNT separately and divide"
                )

        used: set[str] = set(keys)
        for flt in filters:
            used |= flt.columns_used()
        for spec in specs:
            if spec.expr is not None:
                used |= spec.expr.columns_used()
        missing = used - set(lo_table.schema.names)
        if missing:
            raise SQLError(
                f"column(s) {sorted(missing)} are missing from version "
                f"{ref.minus_version} of {base!r}; a difference needs "
                "both sides to expose every referenced column"
            )

        def side(scan_name: str) -> p.PlanNode:
            node: p.PlanNode = p.Scan(scan_name)
            if rate is not None:
                node = p.TableSample(
                    node,
                    CoordinatedBernoulli(rate, namespace=base, salt=seed),
                )
            if filters:
                node = p.Select(node, e.and_(*filters))
            return node

        try:
            return VersionDiff(
                side(hi_name),
                side(lo_name),
                specs,
                base=base,
                lo_version=ref.minus_version,
                hi_version=ref.version,
                keys=keys,
                having=having,
                rate=rate,
                seed=seed,
            )
        except PlanError as exc:
            raise SQLError(str(exc)) from exc

    # -- resolution ------------------------------------------------------------

    def _resolve_tables(self) -> None:
        seen_bases: set[str] = set()
        for ref in self.query.tables:
            internal = self._internal_name(ref)
            self.internal_names.append(internal)
            if ref.name in seen_bases:
                raise SQLError(
                    f"table {ref.name!r} appears twice: self-joins are "
                    "outside the GUS algebra (paper, Section 9); to "
                    "compare two versions of one table, write "
                    f"'{ref.name} AT VERSION hi MINUS AT VERSION lo'"
                )
            seen_bases.add(ref.name)
            if ref.alias:
                self.aliases[ref.alias] = internal
            if internal != ref.name:
                # Let ``t.col`` qualifiers keep working on ``t AT VERSION n``.
                self.aliases[ref.name] = internal
            for column in self.db.tables[internal].schema.names:
                if column in self.column_owner:
                    raise SQLError(
                        f"column {column!r} is ambiguous between "
                        f"{self.column_owner[column]!r} and {internal!r}"
                    )
                self.column_owner[column] = internal

    def _internal_name(self, ref: ast.TableRef) -> str:
        """Catalog name for a table ref, resolving ``AT VERSION`` pins."""
        if ref.name not in self.db.tables:
            raise SQLError(
                f"unknown table {ref.name!r}; "
                f"catalog has {sorted(self.db.tables)}"
            )
        if base_name(ref.name) != ref.name:
            raise SQLError(
                f"table {ref.name!r} addresses the snapshot namespace "
                "directly; use 'AT VERSION n' instead"
            )
        if ref.version is None:
            return ref.name
        try:
            return self.db.resolve_version(ref.name, ref.version)
        except SchemaError as exc:
            raise SQLError(str(exc)) from None

    def _owner_of(self, ref: ast.ColumnRef) -> str:
        if ref.name not in self.column_owner:
            raise SQLError(f"unknown column {ref.name!r}")
        owner = self.column_owner[ref.name]
        if ref.qualifier is not None:
            named = self.aliases.get(ref.qualifier, ref.qualifier)
            if named != owner:
                raise SQLError(
                    f"column {ref.name!r} belongs to {owner!r}, "
                    f"not {ref.qualifier!r}"
                )
        return owner

    # -- WHERE decomposition ---------------------------------------------------

    def _split_where(self) -> tuple[list[tuple[str, str, str, str]], list[e.Expr]]:
        """Return (equi-join conditions, residual filter expressions).

        A join condition is ``col_a = col_b`` with the two columns owned
        by different tables; it is returned as
        ``(table_a, col_a, table_b, col_b)``.  Everything else becomes a
        filter.  OR/NOT expressions are never split.
        """
        joins: list[tuple[str, str, str, str]] = []
        filters: list[e.Expr] = []
        for conjunct in self._conjuncts(self.query.where):
            join = self._as_join(conjunct)
            if join is not None:
                joins.append(join)
            else:
                filters.append(self._expr(conjunct))
        return joins, filters

    def _conjuncts(self, node):
        if node is None:
            return
        if isinstance(node, ast.BoolOp) and node.op == "AND":
            yield from self._conjuncts(node.left)
            yield from self._conjuncts(node.right)
        else:
            yield node

    def _as_join(self, node) -> tuple[str, str, str, str] | None:
        if not (
            isinstance(node, ast.Compare)
            and node.op == "="
            and isinstance(node.left, ast.ColumnRef)
            and isinstance(node.right, ast.ColumnRef)
        ):
            return None
        left_owner = self._owner_of(node.left)
        right_owner = self._owner_of(node.right)
        if left_owner == right_owner:
            return None
        return (left_owner, node.left.name, right_owner, node.right.name)

    # -- join-tree construction ---------------------------------------------

    def _leaf(self, ref: ast.TableRef, internal: str) -> p.PlanNode:
        scan = p.Scan(internal)
        if ref.sample is None:
            return scan
        return p.TableSample(scan, build_sampling_method(ref.sample))

    def _build_join_tree(
        self, joins: list[tuple[str, str, str, str]]
    ) -> p.PlanNode:
        """Left-deep tree in FROM order, joining on every applicable
        condition; unconnected tables fall back to cross products."""
        order = list(self.internal_names)
        trees: dict[str, p.PlanNode] = {
            internal: self._leaf(ref, internal)
            for ref, internal in zip(self.query.tables, self.internal_names)
        }
        try:
            return p.left_deep_join_tree(order, trees, joins)
        except PlanError as exc:
            raise SQLError(str(exc)) from exc

    # -- expressions ------------------------------------------------------------

    def _expr(self, node) -> e.Expr:
        if isinstance(node, ast.ColumnRef):
            self._owner_of(node)  # validates existence/qualifier
            return e.col(node.name)
        if isinstance(node, ast.NumberLit):
            return e.lit(node.as_python)
        if isinstance(node, ast.StringLit):
            return e.lit(node.value)
        if isinstance(node, ast.Arithmetic):
            return e.BinOp(node.op, self._expr(node.left), self._expr(node.right))
        if isinstance(node, ast.Compare):
            return e.Comparison(
                node.op, self._expr(node.left), self._expr(node.right)
            )
        if isinstance(node, ast.BoolOp):
            ctor = e.And if node.op == "AND" else e.Or
            return ctor(self._expr(node.left), self._expr(node.right))
        if isinstance(node, ast.NotOp):
            return e.Not(self._expr(node.child))
        raise SQLError(f"unsupported expression node {type(node).__name__}")

    # -- select list ------------------------------------------------------------

    def _agg_specs(self) -> list[p.AggSpec]:
        specs = []
        for i, item in enumerate(self.query.items):
            expr = item.expression
            quantile = None
            if isinstance(expr, ast.QuantileCall):
                quantile = expr.q
                expr = expr.aggregate
            if not isinstance(expr, ast.AggCall):
                raise SQLError(
                    "mixing aggregates and plain expressions in one "
                    "SELECT requires the plain columns to be GROUP BY "
                    "keys — add a GROUP BY clause naming them"
                )
            alias = item.alias or self._default_alias(expr, quantile, i)
            argument = (
                None if expr.argument is None else self._expr(expr.argument)
            )
            specs.append(p.AggSpec(expr.func, argument, alias, quantile))
        return specs

    # -- GROUP BY ---------------------------------------------------------------

    def _group_aggregate(self, tree: p.PlanNode) -> p.GroupAggregate:
        """Build the :class:`~repro.relational.plan.GroupAggregate`.

        The output schema is the group key columns followed by the
        aggregate aliases; HAVING is rewritten onto that schema (an
        aggregate call in HAVING must match a select-list aggregate,
        whose alias column it becomes).
        """
        keys: list[str] = []
        for ref in self.query.group_by:
            self._owner_of(ref)  # validates existence and qualifier
            if ref.name in keys:
                raise SQLError(f"duplicate GROUP BY key {ref.name!r}")
            keys.append(ref.name)
        specs: list[p.AggSpec] = []
        for i, item in enumerate(self.query.items):
            expr = item.expression
            if isinstance(expr, ast.ColumnRef):
                self._owner_of(expr)
                if expr.name not in keys:
                    raise SQLError(
                        f"column {expr.name!r} in SELECT is not a GROUP "
                        "BY key; non-key columns must appear inside an "
                        "aggregate"
                    )
                if item.alias is not None and item.alias != expr.name:
                    raise SQLError(
                        "aliasing a GROUP BY key column is not "
                        f"supported (tried {expr.name!r} AS {item.alias!r})"
                    )
                continue
            quantile = None
            if isinstance(expr, ast.QuantileCall):
                quantile = expr.q
                expr = expr.aggregate
            if not isinstance(expr, ast.AggCall):
                raise SQLError(
                    "a grouped SELECT list may hold GROUP BY keys and "
                    "aggregates only"
                )
            alias = item.alias or self._default_alias(expr, quantile, i)
            argument = (
                None if expr.argument is None else self._expr(expr.argument)
            )
            specs.append(p.AggSpec(expr.func, argument, alias, quantile))
        if not specs:
            raise SQLError(
                "GROUP BY without any aggregate in the SELECT list is "
                "plain DISTINCT, which this dialect does not estimate; "
                "add an aggregate (e.g. COUNT(*))"
            )
        having = (
            None
            if self.query.having is None
            else self._having_expr(self.query.having, keys, specs)
        )
        return p.GroupAggregate(tree, keys, specs, having)

    def _having_expr(
        self, node, keys: list[str], specs: list[p.AggSpec]
    ) -> e.Expr:
        """Rewrite a HAVING AST onto the grouped output schema."""
        if isinstance(node, ast.AggCall):
            argument = (
                None if node.argument is None else self._expr(node.argument)
            )
            for spec in specs:
                if spec.quantile is not None or spec.kind != node.func:
                    continue
                if (spec.expr is None) != (argument is None):
                    continue
                if spec.expr is None or spec.expr.key() == argument.key():
                    return e.col(spec.alias)
            raise SQLError(
                f"HAVING aggregate {node.func.upper()} has no matching "
                "select-list aggregate; add it to the SELECT list (with "
                "an alias) first"
            )
        if isinstance(node, ast.ColumnRef) and node.qualifier is None:
            aliases = {spec.alias for spec in specs}
            if node.name in aliases:
                return e.col(node.name)
            # Fall through: a real column reference, validated below —
            # the GroupAggregate constructor rejects non-key columns.
        if isinstance(node, ast.ColumnRef):
            self._owner_of(node)
            return e.col(node.name)
        if isinstance(node, (ast.NumberLit, ast.StringLit)):
            return self._expr(node)
        if isinstance(node, ast.Arithmetic):
            return e.BinOp(
                node.op,
                self._having_expr(node.left, keys, specs),
                self._having_expr(node.right, keys, specs),
            )
        if isinstance(node, ast.Compare):
            return e.Comparison(
                node.op,
                self._having_expr(node.left, keys, specs),
                self._having_expr(node.right, keys, specs),
            )
        if isinstance(node, ast.BoolOp):
            ctor = e.And if node.op == "AND" else e.Or
            return ctor(
                self._having_expr(node.left, keys, specs),
                self._having_expr(node.right, keys, specs),
            )
        if isinstance(node, ast.NotOp):
            return e.Not(self._having_expr(node.child, keys, specs))
        raise SQLError(
            f"unsupported expression node {type(node).__name__} in HAVING"
        )

    @staticmethod
    def _default_alias(agg: ast.AggCall, quantile: float | None, i: int) -> str:
        base = agg.func if quantile is None else f"{agg.func}_q{quantile:g}"
        return f"{base}_{i + 1}"

    def _projection_outputs(self, tree: p.PlanNode) -> dict[str, e.Expr]:
        outputs: dict[str, e.Expr] = {}
        for i, item in enumerate(self.query.items):
            expr = self._expr(item.expression)
            if item.alias:
                name = item.alias
            elif isinstance(item.expression, ast.ColumnRef):
                name = item.expression.name
            else:
                name = f"col_{i + 1}"
            if name in outputs:
                raise SQLError(f"duplicate output column {name!r}")
            outputs[name] = expr
        return outputs
