"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "SUM",
    "COUNT",
    "AVG",
    "QUANTILE",
    "TABLESAMPLE",
    "PERCENT",
    "ROWS",
    "BLOCKS",
    "SYSTEM",
    "REPEATABLE",
    "CREATE",
    "VIEW",
    "WITHIN",
    "CONFIDENCE",
    "EXPLAIN",
    "SAMPLING",
    "ANALYZE",
    "AT",
    "VERSION",
    "VERSIONS",
    "MINUS",
    "BETWEEN",
}

#: Multi-character operators first so maximal munch applies.
SYMBOLS = ["<=", ">=", "!=", "<>", "(", ")", ",", "*", "+", "-", "/", "=", "<", ">", ".", ";", "%"]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str  # 'kw' | 'ident' | 'number' | 'string' | 'symbol' | 'eof'
    value: str
    position: int

    def is_kw(self, word: str) -> bool:
        return self.kind == "kw" and self.value == word

    def is_symbol(self, sym: str) -> bool:
        return self.kind == "symbol" and self.value == sym


def tokenize(text: str) -> list[Token]:
    """Lex SQL text into tokens, ending with an ``eof`` sentinel."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            kind = "kw" if upper in KEYWORDS else "ident"
            tokens.append(Token(kind, upper if kind == "kw" else word, i))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a
                    # decimal point (e.g. ``l.orderkey``).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    while k < n and text[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 1
            if j >= n:
                raise SQLSyntaxError("unterminated string literal", i)
            tokens.append(Token("string", text[i + 1 : j], i))
            i = j + 1
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token("symbol", sym, i))
                i += len(sym)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens
