"""Recursive-descent parser for the SQL subset.

Grammar (EBNF, keywords case-insensitive)::

    query        := [EXPLAIN (SAMPLING | ANALYZE)] [create_view]
                    SELECT items FROM tables [WHERE bool_expr]
                    [GROUP BY column ("," column)* [HAVING bool_expr]]
                    [budget]
    budget       := WITHIN number ["%"] CONFIDENCE number
    create_view  := CREATE VIEW ident ["(" ident ("," ident)* ")"] AS
    items        := item ("," item)*
    item         := expr [AS ident]
    expr         := QUANTILE "(" agg "," number ")" | agg | arith
    agg          := (SUM|AVG) "(" arith ")" | COUNT "(" ("*" | arith) ")"
    arith        := term (("+"|"-") term)*
    term         := factor (("*"|"/") factor)*
    factor       := number | string | column | "(" arith ")" | "-" factor
                  | agg                     -- inside HAVING only
    column       := ident ["." ident]
    tables       := table ("," table)*
    table        := ident [ident] [versions]
                    [TABLESAMPLE "(" sample ")" [REPEATABLE "(" number ")"]]
    versions     := AT VERSION number [MINUS AT VERSION number]
                  | MINUS AT VERSION number
                  | VERSIONS BETWEEN number AND number
    sample       := number (PERCENT | ROWS)
                  | SYSTEM "(" number (PERCENT | BLOCKS) "," number ")"
    bool_expr    := bool_term (OR bool_term)*
    bool_term    := bool_factor (AND bool_factor)*
    bool_factor  := NOT bool_factor | "(" bool_expr ")" | comparison
    comparison   := arith ("="|"!="|"<>"|"<"|"<="|">"|">=") arith
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    AggCall,
    Arithmetic,
    BoolOp,
    ColumnRef,
    Compare,
    ErrorBudgetClause,
    NotOp,
    NumberLit,
    QuantileCall,
    SampleClause,
    SelectItem,
    SelectQuery,
    StringLit,
    TableRef,
)
from repro.sql.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        # Aggregate calls are legal inside HAVING (the planner maps
        # them onto select-list aliases) but nowhere else below the
        # select list.
        self._in_having = False

    # -- cursor helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.current
        self.pos += 1
        return tok

    def accept_kw(self, word: str) -> bool:
        if self.current.is_kw(word):
            self.advance()
            return True
        return False

    def accept_symbol(self, sym: str) -> bool:
        if self.current.is_symbol(sym):
            self.advance()
            return True
        return False

    def expect_kw(self, word: str) -> Token:
        if not self.current.is_kw(word):
            raise SQLSyntaxError(
                f"expected {word}, found {self.current.value or 'end of input'!r}",
                self.current.position,
            )
        return self.advance()

    def expect_symbol(self, sym: str) -> Token:
        if not self.current.is_symbol(sym):
            raise SQLSyntaxError(
                f"expected {sym!r}, found {self.current.value or 'end of input'!r}",
                self.current.position,
            )
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise SQLSyntaxError(
                f"expected identifier, found {self.current.value or 'end of input'!r}",
                self.current.position,
            )
        return self.advance().value

    def expect_number(self) -> float:
        if self.current.kind != "number":
            raise SQLSyntaxError(
                f"expected number, found {self.current.value or 'end of input'!r}",
                self.current.position,
            )
        return float(self.advance().value)

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        explain_sampling = False
        explain_analyze = False
        if self.accept_kw("EXPLAIN"):
            if self.accept_kw("ANALYZE"):
                explain_analyze = True
            else:
                self.expect_kw("SAMPLING")
                explain_sampling = True
        view_name: str | None = None
        view_columns: tuple[str, ...] = ()
        if self.accept_kw("CREATE"):
            self.expect_kw("VIEW")
            view_name = self.expect_ident()
            if self.accept_symbol("("):
                cols = [self.expect_ident()]
                while self.accept_symbol(","):
                    cols.append(self.expect_ident())
                self.expect_symbol(")")
                view_columns = tuple(cols)
            self.expect_kw("AS")
        self.expect_kw("SELECT")
        items = [self.parse_item()]
        while self.accept_symbol(","):
            items.append(self.parse_item())
        self.expect_kw("FROM")
        tables = [self.parse_table()]
        while self.accept_symbol(","):
            tables.append(self.parse_table())
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_bool_expr()
        group_by: list[ColumnRef] = []
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by.append(self.parse_group_key())
            while self.accept_symbol(","):
                group_by.append(self.parse_group_key())
        having = None
        if self.current.is_kw("HAVING"):
            if not group_by:
                raise SQLSyntaxError(
                    "HAVING requires a GROUP BY clause",
                    self.current.position,
                )
            self.advance()
            self._in_having = True
            try:
                having = self.parse_bool_expr()
            finally:
                self._in_having = False
        budget = None
        if self.current.is_kw("WITHIN"):
            budget = self.parse_budget()
        self.accept_symbol(";")
        if self.current.kind != "eof":
            raise SQLSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return SelectQuery(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            view_name=view_name,
            view_columns=view_columns,
            budget=budget,
            explain_sampling=explain_sampling,
            explain_analyze=explain_analyze,
        )

    def parse_group_key(self) -> ColumnRef:
        """One GROUP BY key: a possibly qualified column reference."""
        name = self.expect_ident()
        if self.accept_symbol("."):
            return ColumnRef(self.expect_ident(), qualifier=name)
        return ColumnRef(name)

    def parse_budget(self) -> ErrorBudgetClause:
        """``WITHIN <pct> ["%"] CONFIDENCE <level>`` — the error budget.

        ``level`` is a fraction in (0, 1), or a percentage in
        [50, 100) (``CONFIDENCE 95`` ≡ ``CONFIDENCE 0.95``).
        """
        self.expect_kw("WITHIN")
        position = self.current.position
        percent = self.expect_number()
        self.accept_symbol("%")
        if not 0.0 < percent < 100.0:
            raise SQLSyntaxError(
                f"WITHIN percentage {percent:g} must be in (0, 100)",
                position,
            )
        self.expect_kw("CONFIDENCE")
        position = self.current.position
        level = self.expect_number()
        # Values ≥ 1 are only read as percentages in the range real
        # confidence levels live in (90, 95, 99...).  Accepting any
        # number > 1 would turn typos like CONFIDENCE 1.96 (a z-value)
        # or CONFIDENCE 1 into near-zero levels that trivially "meet"
        # every budget.
        if 50.0 <= level < 100.0:
            level /= 100.0
        if not 0.0 < level < 1.0:
            raise SQLSyntaxError(
                "confidence level must be a fraction in (0, 1) or a "
                f"percentage in [50, 100), got {level:g}",
                position,
            )
        return ErrorBudgetClause(percent=percent, level=level)

    def parse_item(self) -> SelectItem:
        expr = self.parse_select_expr()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_select_expr(self):
        if self.current.is_kw("QUANTILE"):
            self.advance()
            self.expect_symbol("(")
            agg = self.parse_agg()
            self.expect_symbol(",")
            q = self.expect_number()
            self.expect_symbol(")")
            return QuantileCall(agg, q)
        if self.current.kind == "kw" and self.current.value in (
            "SUM",
            "COUNT",
            "AVG",
        ):
            return self.parse_agg()
        return self.parse_arith()

    def parse_agg(self) -> AggCall:
        func = self.advance().value.lower()
        self.expect_symbol("(")
        if func == "count" and self.accept_symbol("*"):
            self.expect_symbol(")")
            return AggCall("count", None)
        arg = self.parse_arith()
        self.expect_symbol(")")
        return AggCall(func, arg)

    def parse_arith(self):
        left = self.parse_term()
        while self.current.kind == "symbol" and self.current.value in "+-":
            op = self.advance().value
            left = Arithmetic(op, left, self.parse_term())
        return left

    def parse_term(self):
        left = self.parse_factor()
        while self.current.kind == "symbol" and self.current.value in "*/":
            op = self.advance().value
            left = Arithmetic(op, left, self.parse_factor())
        return left

    def parse_factor(self):
        tok = self.current
        if self._in_having and tok.kind == "kw" and tok.value in (
            "SUM",
            "COUNT",
            "AVG",
        ):
            return self.parse_agg()
        if tok.kind == "number":
            self.advance()
            return NumberLit(float(tok.value))
        if tok.kind == "string":
            self.advance()
            return StringLit(tok.value)
        if tok.is_symbol("-"):
            self.advance()
            return Arithmetic("-", NumberLit(0.0), self.parse_factor())
        if tok.is_symbol("("):
            self.advance()
            inner = self.parse_arith()
            self.expect_symbol(")")
            return inner
        if tok.kind == "ident":
            name = self.advance().value
            if self.accept_symbol("."):
                column = self.expect_ident()
                return ColumnRef(column, qualifier=name)
            return ColumnRef(name)
        raise SQLSyntaxError(
            f"expected expression, found {tok.value or 'end of input'!r}",
            tok.position,
        )

    def parse_table(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.current.kind == "ident":
            alias = self.advance().value
        version, minus_version, between = self.parse_versions()
        sample = None
        if self.accept_kw("TABLESAMPLE"):
            sample = self.parse_sample()
        return TableRef(
            name=name,
            alias=alias,
            sample=sample,
            version=version,
            minus_version=minus_version,
            between=between,
        )

    def parse_versions(self) -> tuple[int | None, int | None, bool]:
        """The optional version pin / difference clause of a table ref.

        Returns ``(version, minus_version, between)``; ``version`` is
        ``None`` for the live table.  ``VERSIONS BETWEEN lo AND hi``
        is sugar for ``AT VERSION hi MINUS AT VERSION lo``.
        """
        if self.accept_kw("AT"):
            self.expect_kw("VERSION")
            version = self.expect_version_number()
            minus = None
            if self.accept_kw("MINUS"):
                self.expect_kw("AT")
                self.expect_kw("VERSION")
                minus = self.expect_version_number()
            return version, minus, False
        if self.accept_kw("MINUS"):
            # Live table minus a snapshot: ``t MINUS AT VERSION n``.
            self.expect_kw("AT")
            self.expect_kw("VERSION")
            return None, self.expect_version_number(), False
        if self.accept_kw("VERSIONS"):
            self.expect_kw("BETWEEN")
            position = self.current.position
            lo = self.expect_version_number()
            self.expect_kw("AND")
            hi = self.expect_version_number()
            if lo >= hi:
                raise SQLSyntaxError(
                    f"VERSIONS BETWEEN needs lo < hi, got {lo} and {hi}",
                    position,
                )
            return hi, lo, True
        return None, None, False

    def expect_version_number(self) -> int:
        position = self.current.position
        value = self.expect_number()
        if value != int(value) or value < 1:
            raise SQLSyntaxError(
                f"version numbers are positive integers, got {value:g}",
                position,
            )
        return int(value)

    def parse_sample(self) -> SampleClause:
        self.expect_symbol("(")
        if self.accept_kw("SYSTEM"):
            self.expect_symbol("(")
            amount = self.expect_number()
            if self.accept_kw("PERCENT"):
                kind = "system_percent"
            elif self.accept_kw("BLOCKS"):
                kind = "system_blocks"
            else:
                raise SQLSyntaxError(
                    "SYSTEM sample needs PERCENT or BLOCKS",
                    self.current.position,
                )
            self.expect_symbol(",")
            rows_per_block = int(self.expect_number())
            self.expect_symbol(")")
            self.expect_symbol(")")
            return self._with_repeatable(
                SampleClause(kind, amount, rows_per_block)
            )
        amount = self.expect_number()
        if self.accept_kw("PERCENT"):
            kind = "percent"
        elif self.accept_kw("ROWS"):
            kind = "rows"
        else:
            raise SQLSyntaxError(
                "TABLESAMPLE needs PERCENT or ROWS", self.current.position
            )
        self.expect_symbol(")")
        return self._with_repeatable(SampleClause(kind, amount))

    def _with_repeatable(self, clause: SampleClause) -> SampleClause:
        if self.accept_kw("REPEATABLE"):
            self.expect_symbol("(")
            seed = int(self.expect_number())
            self.expect_symbol(")")
            return SampleClause(
                clause.kind, clause.amount, clause.rows_per_block, seed
            )
        return clause

    def parse_bool_expr(self):
        left = self.parse_bool_term()
        while self.accept_kw("OR"):
            left = BoolOp("OR", left, self.parse_bool_term())
        return left

    def parse_bool_term(self):
        left = self.parse_bool_factor()
        while self.accept_kw("AND"):
            left = BoolOp("AND", left, self.parse_bool_factor())
        return left

    def parse_bool_factor(self):
        if self.accept_kw("NOT"):
            return NotOp(self.parse_bool_factor())
        if self.current.is_symbol("("):
            # Could be a parenthesized boolean or an arithmetic grouping
            # inside a comparison; try boolean first, then backtrack.
            saved = self.pos
            try:
                self.advance()
                inner = self.parse_bool_expr()
                self.expect_symbol(")")
                return inner
            except SQLSyntaxError:
                self.pos = saved
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_arith()
        tok = self.current
        if tok.kind != "symbol" or tok.value not in (
            "=",
            "!=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
        ):
            raise SQLSyntaxError(
                f"expected comparison operator, found "
                f"{tok.value or 'end of input'!r}",
                tok.position,
            )
        op = self.advance().value
        if op == "<>":
            op = "!="
        right = self.parse_arith()
        return Compare(op, left, right)


def parse(text: str) -> SelectQuery:
    """Parse SQL text into a :class:`SelectQuery` AST."""
    return _Parser(tokenize(text)).parse_query()
