"""Seeded random generation of fuzz schemas and queries.

Queries are generated as ASTs (:mod:`repro.sql.ast_nodes`) and rendered
through the printer, so every generated statement exercises the
``parse ∘ print`` fixed point by construction.  The generator only
emits statements the planner accepts — a planning error on generated
text is itself a reportable failure, not generator noise.

The schema is small but adversarial: a skewed fact table, a dimension
for joins, a three-row ``tiny`` table (singleton-group fodder), and a
zero-row ``void`` table (the empty-input corner every hand-written
suite skips).  Column names are globally unique, as the planner
requires.  :func:`install_fuzz_versions` additionally grows the fact
table a deterministic snapshot history, so the stream covers version
pins (``AT VERSION n``) and coordinated version differences
(``MINUS AT VERSION`` / ``VERSIONS BETWEEN``) too.
"""

from __future__ import annotations

import random

import numpy as np

from repro.sampling import sql_sample_tags
from repro.sql import ast_nodes as ast

__all__ = [
    "FUZZ_TABLES",
    "FUZZ_VERSIONS",
    "QueryGenerator",
    "build_fuzz_tables",
    "install_fuzz_versions",
]

#: Sampling-rate ladder (percent).  Includes the tiny rates that
#: degradation produces (exponent-form literals) and rates low enough
#: that small tables survive with zero rows.
RATE_LADDER = (90.0, 75.0, 50.0, 25.0, 10.0, 5.0, 1.0, 0.5, 0.01, 1e-05)

#: table → (numeric columns, group-key columns, join key)
FUZZ_TABLES = {
    "fact": (("f_val", "f_flag"), ("f_cat", "f_flag"), "f_key"),
    "dim": (("d_weight",), ("d_grp",), "d_key"),
    "tiny": (("t_val",), ("t_key",), "t_key"),
    "void": (("v_val",), ("v_key",), "v_key"),
}

#: (left, right) table pairs joinable on their join keys.
JOIN_PAIRS = (("fact", "dim"), ("fact", "tiny"), ("fact", "void"))

#: Snapshot versions installed on the fuzz ``fact`` table; the live
#: table sits one further mutation step past the last snapshot.
FUZZ_VERSIONS = 2

#: Fraction of ``f_val`` rows each version step perturbs.
VERSION_CHANGE_FRACTION = 0.05

#: Draw weight per registered ``TABLESAMPLE`` surface form (see
#: :func:`repro.sampling.sql_sample_tags`).  A registered family whose
#: tag has no weight here is skipped — the generator cannot guess a
#: clause shape for a form it has never seen.
SAMPLE_TAG_WEIGHTS = {
    "percent": 0.30,
    "percent-repeatable": 0.25,
    "rows": 0.20,
    "system": 0.25,
}


def build_fuzz_tables(seed: int = 0) -> dict[str, dict[str, np.ndarray]]:
    """Column arrays for the fuzz schema, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    n_fact, n_dim = 400, 60
    # Skewed foreign keys: a few dimension rows soak up most of the
    # fact rows (join fanout stress), some dimension rows match nothing.
    f_key = np.minimum(
        rng.geometric(0.08, size=n_fact) - 1, n_dim - 1
    ).astype(np.int64)
    f_val = np.where(
        rng.random(n_fact) < 0.1,
        rng.normal(0.0, 1e4, size=n_fact),  # heavy tail
        rng.normal(10.0, 3.0, size=n_fact),
    )
    return {
        "fact": {
            "f_key": f_key,
            "f_val": f_val,
            "f_cat": rng.integers(0, 5, size=n_fact, dtype=np.int64),
            "f_flag": rng.integers(0, 2, size=n_fact, dtype=np.int64),
        },
        "dim": {
            "d_key": np.arange(n_dim, dtype=np.int64),
            "d_weight": rng.normal(1.0, 0.5, size=n_dim),
            "d_grp": rng.integers(0, 3, size=n_dim, dtype=np.int64),
        },
        "tiny": {
            "t_key": np.arange(3, dtype=np.int64),
            "t_val": np.array([1.5, -2.0, 40.0]),
        },
        "void": {
            "v_key": np.array([], dtype=np.int64),
            "v_val": np.array([], dtype=np.float64),
        },
    }


def install_fuzz_versions(db, seed: int = 0) -> None:
    """Give ``fact`` a deterministic version history on ``db``.

    Applies :data:`FUZZ_VERSIONS` update-shaped mutation steps through
    ``db.update_table`` — each perturbs ~5 % of ``f_val`` in place, so
    row positions (the coordination keys) never move — leaving the
    catalog with ``fact AT VERSION 1..FUZZ_VERSIONS`` plus a live table
    one step further.  Deterministic in ``seed`` and the starting
    contents, so every database one check touches (plain, catalog,
    mmap twin, fresh rebuilds) grows a bit-identical history.
    """
    rng = np.random.default_rng(seed + 0x5EED)
    for _ in range(FUZZ_VERSIONS):
        fact = db.table("fact")
        values = np.array(fact.column("f_val"), dtype=np.float64, copy=True)
        n_changed = max(1, int(values.shape[0] * VERSION_CHANGE_FRACTION))
        rows = rng.choice(values.shape[0], size=n_changed, replace=False)
        values[rows] += rng.normal(0.0, 25.0, size=n_changed)
        db.update_table("fact", fact.with_columns({"f_val": values}))


class QueryGenerator:
    """A deterministic stream of planner-valid random queries.

    ``query()`` returns a :class:`~repro.sql.ast_nodes.SelectQuery`;
    the i-th query of two generators built with the same seed is
    identical, which is what makes every fuzz failure replayable from
    ``(seed, index)`` alone.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rand = random.Random(seed)
        self._alias_n = 0

    # -- small helpers -----------------------------------------------------

    def _chance(self, p: float) -> bool:
        return self.rand.random() < p

    def _pick(self, seq):
        return self.rand.choice(list(seq))

    # -- schema-aware pieces ----------------------------------------------

    def _tables(self) -> tuple[list[str], ast.SqlExpr | None]:
        """Pick the FROM tables and the join predicate (if any)."""
        if self._chance(0.35):
            left, right = self._pick(JOIN_PAIRS)
            join = ast.Compare(
                "=",
                ast.ColumnRef(FUZZ_TABLES[left][2]),
                ast.ColumnRef(FUZZ_TABLES[right][2]),
            )
            return [left, right], join
        weights = {"fact": 0.7, "tiny": 0.15, "void": 0.15}
        roll = self.rand.random()
        acc = 0.0
        for name, w in weights.items():
            acc += w
            if roll < acc:
                return [name], None
        return ["fact"], None

    def _numeric_columns(self, tables: list[str]) -> list[str]:
        cols: list[str] = []
        for t in tables:
            cols.extend(FUZZ_TABLES[t][0])
        return cols

    def _group_columns(self, tables: list[str]) -> list[str]:
        cols: list[str] = []
        for t in tables:
            cols.extend(FUZZ_TABLES[t][1])
        return sorted(set(cols))

    def _agg_argument(self, tables: list[str]) -> ast.SqlExpr:
        cols = self._numeric_columns(tables)
        base: ast.SqlExpr = ast.ColumnRef(self._pick(cols))
        if self._chance(0.25):
            op = self._pick("+-*")
            other: ast.SqlExpr = (
                ast.ColumnRef(self._pick(cols))
                if self._chance(0.5) and len(cols) > 1
                else ast.NumberLit(float(self._pick((1, 2, 0.5, 10))))
            )
            base = ast.Arithmetic(op, base, other)
        return base

    def _aggregate(self, tables: list[str], *, allow_quantile: bool):
        roll = self.rand.random()
        if roll < 0.45:
            agg = ast.AggCall("sum", self._agg_argument(tables))
        elif roll < 0.60:
            agg = ast.AggCall("count", None)
        elif roll < 0.70:
            agg = ast.AggCall(
                "count", ast.ColumnRef(self._pick(self._numeric_columns(tables)))
            )
        else:
            agg = ast.AggCall("avg", self._agg_argument(tables))
        expr: ast.SqlExpr = agg
        if allow_quantile and self._chance(0.15):
            expr = ast.QuantileCall(agg, self._pick((0.5, 0.9, 0.95)))
        alias = f"a{self._alias_n}"
        self._alias_n += 1
        return ast.SelectItem(expr, alias)

    def _sample_for_tag(self, tag: str) -> ast.SampleClause:
        """A clause in one registered ``TABLESAMPLE`` surface form."""
        if tag == "percent":
            return ast.SampleClause("percent", self._pick(RATE_LADDER))
        if tag == "percent-repeatable":
            # REPEATABLE is percent-only: fixed-size and block draws
            # have no per-tuple hash form for the planner to pin.
            return ast.SampleClause(
                "percent",
                self._pick(RATE_LADDER),
                repeatable_seed=self.rand.randrange(1_000_000),
            )
        if tag == "rows":
            return ast.SampleClause(
                "rows", float(self._pick((1, 5, 50, 200)))
            )
        if tag == "system":
            kind = (
                "system_percent" if self._chance(0.6) else "system_blocks"
            )
            amount = (
                self._pick((50.0, 20.0, 5.0))
                if kind == "system_percent"
                else float(self._pick((1, 2, 8)))
            )
            return ast.SampleClause(
                kind, amount, rows_per_block=self._pick((4, 16, 64))
            )
        raise ValueError(f"no clause shape for sample tag {tag!r}")

    def _sample(self) -> ast.SampleClause | None:
        """A sample clause drawn from the registered family surface."""
        if self._chance(0.25):
            return None
        tags = [t for t in sql_sample_tags() if t in SAMPLE_TAG_WEIGHTS]
        weights = [SAMPLE_TAG_WEIGHTS[t] for t in tags]
        return self._sample_for_tag(
            self.rand.choices(tags, weights=weights)[0]
        )

    def _filter_predicate(self, tables: list[str]) -> ast.SqlExpr:
        col = self._pick(self._numeric_columns(tables))
        op = self._pick(("<", "<=", ">", ">=", "=", "!="))
        threshold = float(self._pick((0, 1, 8.0, 12.5, -5, 100)))
        pred: ast.SqlExpr = ast.Compare(
            op, ast.ColumnRef(col), ast.NumberLit(threshold)
        )
        if self._chance(0.2):
            pred = ast.NotOp(pred)
        if self._chance(0.2):
            other = self._filter_predicate(tables)
            pred = ast.BoolOp(self._pick(("AND", "OR")), pred, other)
        return pred

    def _having(self, items, keys) -> ast.SqlExpr:
        targets = [i.alias for i in items] + [k.name for k in keys]
        pred: ast.SqlExpr = ast.Compare(
            self._pick(("<", "<=", ">", ">=")),
            ast.ColumnRef(self._pick(targets)),
            ast.NumberLit(float(self._pick((0, 1, 50, 1000, -100)))),
        )
        if self._chance(0.25):
            pred = ast.NotOp(pred)
        return pred

    def _grouping(self, items, tables: list[str]):
        """An optional GROUP BY (and HAVING) over the tables' keys."""
        if not self._chance(0.45):
            return (), None
        candidates = self._group_columns(tables)
        self.rand.shuffle(candidates)
        group_by = tuple(
            ast.ColumnRef(c) for c in candidates[: self.rand.randint(1, 2)]
        )
        having = (
            self._having(items, group_by) if self._chance(0.40) else None
        )
        return group_by, having

    # -- versioned statements ----------------------------------------------

    def _diff_sample(self) -> ast.SampleClause | None:
        """Difference refs sample by coordinated Bernoulli or not at all."""
        if self._chance(0.3):
            return None
        return ast.SampleClause(
            "percent",
            self._pick(RATE_LADDER),
            repeatable_seed=self.rand.randrange(1_000_000),
        )

    def _version_pair(self) -> tuple[int, int | None]:
        """``(lo, hi)`` with hi above lo; ``None`` is the live table."""
        lo = self._pick(range(1, FUZZ_VERSIONS + 1))
        if lo == FUZZ_VERSIONS:
            return lo, None
        return lo, self._pick((*range(lo + 1, FUZZ_VERSIONS + 1), None))

    def _diff_aggregate(self) -> ast.SelectItem:
        """SUM/COUNT only: AVG over a difference is a ratio, not a sum."""
        roll = self.rand.random()
        if roll < 0.60:
            agg = ast.AggCall("sum", self._agg_argument(["fact"]))
        elif roll < 0.80:
            agg = ast.AggCall("count", None)
        else:
            agg = ast.AggCall(
                "count", ast.ColumnRef(self._pick(FUZZ_TABLES["fact"][0]))
            )
        expr: ast.SqlExpr = agg
        if self._chance(0.12):
            expr = ast.QuantileCall(agg, self._pick((0.5, 0.9, 0.95)))
        alias = f"a{self._alias_n}"
        self._alias_n += 1
        return ast.SelectItem(expr, alias)

    def _diff_query(self) -> ast.SelectQuery:
        """A version-difference statement over the ``fact`` history."""
        lo, hi = self._version_pair()
        between = hi is not None and self._chance(0.3)
        ref = ast.TableRef(
            "fact",
            sample=self._diff_sample(),
            version=hi,
            minus_version=lo,
            between=between,
        )
        items = tuple(
            self._diff_aggregate() for _ in range(self.rand.randint(1, 2))
        )
        where = (
            self._filter_predicate(["fact"]) if self._chance(0.35) else None
        )
        group_by, having = self._grouping(items, ["fact"])
        return ast.SelectQuery(
            items=items,
            tables=(ref,),
            where=where,
            group_by=group_by,
            having=having,
        )

    def _versioned_query(self) -> ast.SelectQuery:
        """A statement over the ``fact`` version history.

        Either a version *difference* (the coordinated change
        estimator: SUM/COUNT only, optional GROUP BY/HAVING, sampling
        restricted to percent + REPEATABLE) or a plain aggregate pinned
        to one frozen snapshot, where the ordinary surface applies.
        """
        if self._chance(0.55):
            return self._diff_query()
        version = self._pick(range(1, FUZZ_VERSIONS + 1))
        items = tuple(
            self._aggregate(["fact"], allow_quantile=True)
            for _ in range(self.rand.randint(1, 2))
        )
        ref = ast.TableRef("fact", sample=self._sample(), version=version)
        where = (
            self._filter_predicate(["fact"]) if self._chance(0.35) else None
        )
        group_by, having = self._grouping(items, ["fact"])
        return ast.SelectQuery(
            items=items,
            tables=(ref,),
            where=where,
            group_by=group_by,
            having=having,
        )

    # -- the generator proper ----------------------------------------------

    def query(self) -> ast.SelectQuery:
        """One random, planner-valid aggregate query."""
        self._alias_n = 0
        if self._chance(0.18):
            return self._versioned_query()
        tables, join = self._tables()

        budget = None
        if len(tables) == 1 and tables[0] == "fact" and self._chance(0.06):
            budget = ast.ErrorBudgetClause(
                percent=float(self._pick((5, 10, 20, 40))),
                level=self._pick((0.9, 0.95)),
            )

        # Budget queries go through the optimizer: single plain
        # aggregate, no GROUP BY, no QUANTILE.
        n_aggs = 1 if budget is not None else self.rand.randint(1, 3)
        items = tuple(
            self._aggregate(tables, allow_quantile=budget is None)
            for _ in range(n_aggs)
        )

        refs = tuple(
            ast.TableRef(name, sample=self._sample()) for name in tables
        )

        where = join
        if self._chance(0.40):
            extra = self._filter_predicate(tables)
            where = (
                extra if where is None else ast.BoolOp("AND", where, extra)
            )

        group_by: tuple[ast.ColumnRef, ...] = ()
        having = None
        if budget is None:
            group_by, having = self._grouping(items, tables)

        return ast.SelectQuery(
            items=items,
            tables=refs,
            where=where,
            group_by=group_by,
            having=having,
            budget=budget,
        )
