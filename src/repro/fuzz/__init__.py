"""Random-query differential fuzzing with sequential acceptance.

The fuzzer generates seeded random queries over the full SQL surface
(joins × sampling families/rates/seeds × GROUP BY/HAVING × ``WITHIN``
budgets × snapshot pins and coordinated version differences × catalog
reuse × worker counts), checks each one three ways —
exact-executor oracle, serial/chunked/cross-worker determinism, and
statistical unbiasedness + CI coverage via a sequential
probability-ratio test — and greedily shrinks any failure to a minimal
statement + seed with a ready-to-paste regression test.

Entry points: :func:`run_fuzz` (library / ``repro fuzz`` CLI) and
:func:`check_statement` (one statement, all checks — what regression
tests call).
"""

from repro.fuzz.checker import (
    CheckContext,
    CheckFailure,
    check_statement,
    oracle_statement,
)
from repro.fuzz.generator import (
    QueryGenerator,
    build_fuzz_tables,
    install_fuzz_versions,
)
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.shrink import ReproCase, shrink_failure

__all__ = [
    "CheckContext",
    "CheckFailure",
    "FuzzReport",
    "QueryGenerator",
    "ReproCase",
    "build_fuzz_tables",
    "check_statement",
    "install_fuzz_versions",
    "oracle_statement",
    "run_fuzz",
    "shrink_failure",
]
