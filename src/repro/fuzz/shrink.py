"""Greedy shrinking of failing fuzz queries.

A raw counterexample is usually a three-aggregate join with nested
predicates; the bug inside it almost never needs most of that.  The
shrinker repeatedly proposes structurally smaller ASTs (drop a select
item, a predicate arm, a table, a sampling clause, unwrap a wrapper)
and keeps a proposal whenever the *same kind* of check still fails on
it — preserving the failure kind is what stops a reduction from
sliding into a different, unrelated bug.  The result is a
:class:`ReproCase`: minimal statement + seed + a ready-to-paste pytest
function.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.fuzz.checker import CheckContext, CheckFailure
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse
from repro.sql.printer import query_to_sql

__all__ = ["ReproCase", "shrink_failure"]

#: Stop shrinking after this many candidate evaluations; each candidate
#: re-runs a full check, so this bounds shrink time per failure.
MAX_CANDIDATES = 200


@dataclass(frozen=True)
class ReproCase:
    """A shrunk counterexample, replayable from statement + seed."""

    kind: str
    statement: str
    seed: int
    detail: str

    def test_source(self) -> str:
        """A self-contained pytest function reproducing the failure."""
        stmt_lines = "\n".join(
            f'        "{line}"' for line in self.statement.splitlines()
        )
        return (
            f"def test_fuzz_regression_{self.kind}_{self.seed}():\n"
            f'    """Shrunk by the differential fuzzer '
            f'(kind={self.kind}, seed={self.seed})."""\n'
            f"    from repro.fuzz import CheckContext, check_statement\n"
            f"    statement = \"\\n\".join([\n{stmt_lines}\n    ])\n"
            f"    failures = check_statement(\n"
            f"        CheckContext(), statement, seed={self.seed}, "
            f"statistical=True\n"
            f"    )\n"
            f"    assert not failures, failures\n"
        )


def _expr_reductions(expr: ast.SqlExpr) -> Iterator[ast.SqlExpr]:
    """Structurally smaller variants of a boolean/scalar expression."""
    if isinstance(expr, ast.NotOp):
        yield expr.child
        for child in _expr_reductions(expr.child):
            yield ast.NotOp(child)
    elif isinstance(expr, ast.BoolOp):
        yield expr.left
        yield expr.right
        for left in _expr_reductions(expr.left):
            yield replace(expr, left=left)
        for right in _expr_reductions(expr.right):
            yield replace(expr, right=right)
    elif isinstance(expr, ast.Arithmetic):
        yield expr.left
        yield expr.right
    elif isinstance(expr, ast.QuantileCall):
        yield expr.aggregate
    elif isinstance(expr, ast.AggCall) and expr.argument is not None:
        for arg in _expr_reductions(expr.argument):
            yield replace(expr, argument=arg)


def _sample_reductions(
    sample: ast.SampleClause,
) -> Iterator[ast.SampleClause | None]:
    yield None
    if sample.repeatable_seed is not None:
        yield replace(sample, repeatable_seed=None)
    if sample.kind != "percent":
        yield ast.SampleClause(
            "percent", 10.0, repeatable_seed=sample.repeatable_seed
        )
    if sample.kind == "percent" and sample.amount not in (10.0, 50.0):
        yield replace(sample, amount=50.0)


def _candidates(query: ast.SelectQuery) -> Iterator[ast.SelectQuery]:
    """Smaller queries, most aggressive reductions first."""
    # Drop whole clauses.
    if query.budget is not None:
        yield replace(query, budget=None)
    if query.having is not None:
        yield replace(query, having=None)
    if query.where is not None:
        yield replace(query, where=None)
    if query.group_by:
        yield replace(query, group_by=(), having=None)
        for i in range(len(query.group_by)):
            keys = query.group_by[:i] + query.group_by[i + 1 :]
            if keys:
                yield replace(query, group_by=keys)
    # Drop a table (joins): the WHERE may reference its columns, so the
    # variant also drops the predicate — planner rejection of a
    # candidate simply fails to reproduce and is skipped.
    if len(query.tables) > 1:
        for i in range(len(query.tables)):
            tables = query.tables[:i] + query.tables[i + 1 :]
            yield replace(query, tables=tables, where=None)
    # Drop a select item.
    if len(query.items) > 1:
        for i in range(len(query.items)):
            items = query.items[:i] + query.items[i + 1 :]
            yield replace(query, items=items)
    # Unpin versions: a difference collapses to its hi side first
    # (live-MINUS next), a snapshot read to the live table.
    for i, ref in enumerate(query.tables):
        variants = []
        if ref.minus_version is not None:
            variants.append(replace(ref, minus_version=None, between=False))
        if ref.version is not None:
            variants.append(replace(ref, version=None, between=False))
        for variant in variants:
            tables = (
                query.tables[:i] + (variant,) + query.tables[i + 1 :]
            )
            yield replace(query, tables=tables)
    # Simplify sampling clauses.
    for i, ref in enumerate(query.tables):
        if ref.sample is None:
            continue
        for sample in _sample_reductions(ref.sample):
            tables = (
                query.tables[:i]
                + (replace(ref, sample=sample),)
                + query.tables[i + 1 :]
            )
            yield replace(query, tables=tables)
    # Simplify expressions in place.
    if query.where is not None:
        for where in _expr_reductions(query.where):
            yield replace(query, where=where)
    if query.having is not None:
        for having in _expr_reductions(query.having):
            yield replace(query, having=having)
    for i, item in enumerate(query.items):
        for expr in _expr_reductions(item.expression):
            if not isinstance(expr, (ast.AggCall, ast.QuantileCall)):
                continue  # the select list must stay aggregate-only
            items = (
                query.items[:i]
                + (replace(item, expression=expr),)
                + query.items[i + 1 :]
            )
            yield replace(query, items=items)


def _size(query: ast.SelectQuery) -> int:
    return len(query_to_sql(query))


def _recheck(
    ctx: CheckContext, statement: str, seed: int, kind: str
) -> list[CheckFailure]:
    """Re-run only the check family that produced the original failure."""
    if kind in ("roundtrip", "plan"):
        return ctx.check_roundtrip(statement, seed)
    check = getattr(ctx, f"check_{kind}")
    roundtrip = ctx.check_roundtrip(statement, seed)
    if roundtrip:
        return []  # candidate is invalid, not a reproduction
    return check(statement, seed)


def shrink_failure(
    ctx: CheckContext,
    failure: CheckFailure,
    *,
    max_candidates: int = MAX_CANDIDATES,
) -> ReproCase:
    """Greedily minimize a failing statement, preserving failure kind."""
    try:
        current = parse(failure.statement)
    except ReproError:
        # The statement itself does not parse (a roundtrip failure at
        # the lexer level): nothing to shrink structurally.
        return ReproCase(
            kind=failure.kind,
            statement=failure.statement,
            seed=failure.seed,
            detail=failure.detail,
        )
    detail = failure.detail
    budget = max_candidates
    progress = True
    while progress and budget > 0:
        progress = False
        for candidate in _candidates(current):
            if budget <= 0:
                break
            if _size(candidate) >= _size(current):
                continue
            budget -= 1
            text = query_to_sql(candidate)
            repro = [
                f
                for f in _recheck(ctx, text, failure.seed, failure.kind)
                if f.kind == failure.kind
                # Plan errors carry the bug identity in the message
                # (unknown column vs bad REPEATABLE ...); a reduction
                # must not slide into a different rejection.
                and (
                    failure.kind != "plan"
                    or f.detail[:40] == failure.detail[:40]
                )
            ]
            if repro:
                current = candidate
                detail = repro[0].detail
                progress = True
                break
    return ReproCase(
        kind=failure.kind,
        statement=query_to_sql(current),
        seed=failure.seed,
        detail=detail,
    )
