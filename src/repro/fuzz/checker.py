"""Three-way differential checks for one generated statement.

Every statement is checked against independent evidence:

1. **round-trip** — ``parse ∘ print`` is a fixed point and the planner
   accepts the statement (printer/lexer/parser/planner agreement);
2. **exact oracle** — the estimator on the sampling-stripped statement
   (every sampler at rate 1) must reproduce the exact executor's
   answer, group set included;
3. **determinism** — the same statement + seed must agree across the
   serial engine, the chunked engine, and worker counts (chunked
   results are bit-identical across worker counts; serial vs chunked
   may differ in the last ulp when lineage keys collide, so that
   comparison gets a 1e-12 relative tolerance), across the in-RAM and
   memory-mapped columnar storage backends (bit-identical: same bytes,
   different page source), and across a synopsis catalog miss → hit;
4. **statistical** — unbiasedness and CI coverage over re-randomized
   trials, decided by the sequential tests in
   :mod:`repro.stats.sequential` instead of a fixed trial count.

Each check returns :class:`CheckFailure` records; an empty list means
the statement survived everything it was eligible for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import EstimationError, ReproError
from repro.fuzz.generator import build_fuzz_tables, install_fuzz_versions
from repro.relational.database import Database
from repro.relational.table import Table
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse
from repro.sql.printer import query_to_sql
from repro.stats.sequential import BernoulliSPRT, SequentialBiasGuard

__all__ = [
    "CheckContext",
    "CheckFailure",
    "check_statement",
    "oracle_statement",
    "reseeded_statement",
]

#: Relative tolerance for serial vs chunked point estimates: merged
#: moment state sums per lineage key first, so join fanout and block
#: sampling can move the last float ulp (measured ~1e-16 relative).
SERIAL_CHUNKED_RTOL = 1e-12

#: Tolerance for estimator-at-rate-1 vs the exact executor: the same
#: sums evaluated through two code paths.
ORACLE_RTOL = 1e-9

#: Extra absolute slack, scaled by ``max(1, |value|)``, for *quantile*
#: aliases in the serial-vs-chunked comparison only.  A quantile shifts
#: the point estimate by ``z·σ̂``; when the true variance is ~0, σ̂ is
#: pure summation-cancellation noise of order ``√ε·scale·√n`` — and the
#: serial engine and the merged-sketch path sum moments in different
#: orders, so their noise differs (measured: variances 1.7e-15 vs
#: 1.4e-15 around a true 0, quantiles 5e-9 apart).  Worker-count
#: comparisons share one summation order and stay bit-exact.
QUANTILE_SIGMA_ATOL = 1e-6

#: SPRT hypotheses for the CI-coverage test.  Coverage is measured on
#: Chebyshev intervals, whose *nominal* guarantee holds only when the
#: variance estimate itself is honest; on heavy-tailed data at small
#: sample sizes σ̂ is noisy, so realized coverage sits well below the
#: nominal level even for a correct estimator.  The indifference region
#: is therefore wide: only coverage collapsing toward a coin flip is
#: treated as evidence of a broken interval.
COVERAGE_P_PASS = 0.90
COVERAGE_P_FAIL = 0.50

#: Coverage is only assessed for designs expected to draw at least this
#: many rows (tuple-level sampling).  Below it, σ̂ is estimated from a
#: handful of draws that usually miss the heavy tail entirely, and no
#: interval built from σ̂ (normal or Chebyshev) can honestly cover —
#: measured coverage of the *correct* estimator at a 1 % rate on the
#: fuzz fact table is ~0.26.  Applied twice: a priori to each table's
#: expected draw, and per trial to the sample actually *surviving*
#: predicates and joins (selectivity the a-priori gate cannot see).
COVERAGE_MIN_ROWS = 32

#: Block designs are gated on expected *kept blocks* instead: with one
#: or two primary units the between-block variance is invisible to σ̂
#: (both kept blocks full → zero-width interval beside the truth), the
#: classic few-PSU limitation of survey variance estimation.
COVERAGE_MIN_BLOCKS = 8

#: The drift (unbiasedness) guard needs each trial's draw to see a
#: non-trivial fraction of every sampled table.  At tiny fractions the
#: estimator's mean is carried by rare draws — at 10⁻⁷ every trial is
#: empty and every estimate is 0; with 5 of 400 rows the one dominant
#: tuple appears in ~1 % of trials — so any finite-trial mean test
#: would reject an unbiased estimator.  Bias bugs that exist at all
#: rates (a forgotten ``1/a``, a wrong pair probability) are caught in
#: the eligible regime; deterministic ones by the rate-1 oracle.
DRIFT_MIN_FRACTION = 0.2

#: ``min_n`` for the drift guard: with an inclusion fraction ≥ 0.2 the
#: probability that 30 trials all miss a mean-carrying tuple is
#: ``0.8³⁰ ≈ 10⁻³``, keeping rare-event false rejections negligible.
DRIFT_MIN_N = 30


@dataclass(frozen=True)
class CheckFailure:
    """One check that a statement failed."""

    kind: str  # 'roundtrip' | 'plan' | 'oracle' | 'determinism'
    #           | 'reuse' | 'statistical'
    statement: str
    seed: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.kind}] seed={self.seed}: {self.detail}\n{self.statement}"


# -- statement surgery --------------------------------------------------------


def _strip_query(query: ast.SelectQuery) -> ast.SelectQuery:
    """Sampling-free, budget-free, quantile-unwrapped twin of a query.

    ``QUANTILE(agg, q)`` unwraps to its aggregate: the exact executor
    evaluates it as the plain aggregate, and at rate 1 the estimator's
    quantile collapses onto the point value anyway (NaN for singleton
    groups) — the underlying aggregate is the comparable quantity.
    """
    items = tuple(
        replace(item, expression=item.expression.aggregate)
        if isinstance(item.expression, ast.QuantileCall)
        else item
        for item in query.items
    )
    tables = tuple(replace(ref, sample=None) for ref in query.tables)
    return replace(
        query,
        items=items,
        tables=tables,
        budget=None,
        explain_sampling=False,
        explain_analyze=False,
    )


def oracle_statement(statement: str) -> str:
    """The exact-comparable form of a statement (see :func:`_strip_query`)."""
    return query_to_sql(_strip_query(parse(statement)))


def reseeded_statement(statement: str, trial: int) -> str:
    """Rewrite every ``REPEATABLE`` seed to a trial-specific value.

    ``REPEATABLE (s)`` pins the per-tuple hash draws, so statistical
    trials must re-randomize it; non-repeatable clauses re-randomize
    through the engine seed alone.
    """
    query = parse(statement)
    tables = []
    for i, ref in enumerate(query.tables):
        sample = ref.sample
        if sample is not None and sample.repeatable_seed is not None:
            fresh = (
                sample.repeatable_seed + 104729 * (trial + 1) + 7919 * i
            ) % 1_000_003
            ref = replace(ref, sample=replace(sample, repeatable_seed=fresh))
        tables.append(ref)
    return query_to_sql(replace(query, tables=tuple(tables)))


def _is_sampled(query: ast.SelectQuery) -> bool:
    return any(ref.sample is not None for ref in query.tables)


# -- result fingerprints ------------------------------------------------------


def _scalar(value) -> float:
    return float(value)


def _key_item(value):
    """A hashable python value from one group-key cell.

    Numeric cells unbox through ``.item()``; object-array cells
    (dictionary-encoded strings, None) already are python values.
    """
    return value.item() if isinstance(value, np.generic) else value


def _values_close(a: float, b: float, rtol: float, atol: float = 0.0) -> bool:
    a, b = float(a), float(b)
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if a == b:
        return True
    if rtol == 0.0 and atol == 0.0:
        return False
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rtol * scale + atol * max(1.0, scale)


def fingerprint(result):
    """A comparable view of any query result.

    Ungrouped and budget results reduce to ``{alias: float}``; grouped
    results to ``{group-key tuple: {alias: float}}`` so comparisons are
    insensitive to group ordering across engines.
    """
    inner = getattr(result, "result", None)
    if inner is not None:  # OptimizedResult
        result = inner
    keys = getattr(result, "keys", None)
    if keys is None:
        return {alias: _scalar(v) for alias, v in result.values.items()}
    names = list(keys)
    cols = [np.asarray(keys[n]) for n in names]
    n_groups = cols[0].shape[0] if cols else 0
    out: dict[tuple, dict[str, float]] = {}
    for g in range(n_groups):
        key = tuple(_key_item(c[g]) for c in cols)
        out[key] = {
            alias: _scalar(v[g]) for alias, v in result.values.items()
        }
    return out


def _table_fingerprint(table: Table, group_keys: tuple[str, ...]):
    """Fingerprint of an exact-executor output table."""
    aliases = [c for c in table.columns if c not in group_keys]
    if not group_keys:
        return {a: _scalar(table.column(a)[0]) for a in aliases}
    key_cols = [table.column(k) for k in group_keys]
    out: dict[tuple, dict[str, float]] = {}
    for g in range(table.n_rows):
        key = tuple(_key_item(c[g]) for c in key_cols)
        out[key] = {a: _scalar(table.column(a)[g]) for a in aliases}
    return out


def diff_fingerprints(
    a, b, rtol: float, sigma_slack_aliases: frozenset = frozenset()
) -> str | None:
    """First difference between two fingerprints, or ``None``.

    Aliases in ``sigma_slack_aliases`` (quantile outputs) additionally
    tolerate :data:`QUANTILE_SIGMA_ATOL`; see the constant's rationale.
    """
    if set(a) != set(b):
        missing = sorted(set(a) ^ set(b), key=repr)
        return f"key sets differ: {missing[:4]}"
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, dict):
            inner = diff_fingerprints(va, vb, rtol, sigma_slack_aliases)
            if inner is not None:
                return f"group {key!r}: {inner}"
        else:
            atol = (
                QUANTILE_SIGMA_ATOL if key in sigma_slack_aliases else 0.0
            )
            if not _values_close(va, vb, rtol, atol):
                return f"{key!r}: {va!r} vs {vb!r} (rtol={rtol:g})"
    return None


def _is_degenerate_exact(exact, group_keys: tuple[str, ...]) -> bool:
    """Is the exact answer itself undefined-ish (NaN, or no groups)?"""
    if group_keys:
        return not exact
    return any(math.isnan(v) for v in exact.values())


def _outcome(fn, *args, **kwargs):
    """Run an engine call, capturing an engine error as a value.

    The engine deliberately *refuses* some degenerate estimates (an AVG
    over an empty sample, block designs whose pair probabilities
    vanish) instead of emitting silent infinities.  A refusal is then a
    defined outcome every engine must agree on — the differential
    checks compare outcomes, not just answers.
    """
    try:
        return ("ok", fingerprint(fn(*args, **kwargs)))
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))


def diff_outcomes(
    a, b, rtol: float, sigma_slack_aliases: frozenset = frozenset()
) -> str | None:
    """First difference between two engine outcomes, or ``None``."""
    if a[0] != b[0]:
        return f"one engine answered, the other raised: {a!r} vs {b!r}"
    if a[0] == "error":
        if a[1:] != b[1:]:
            return f"different errors: {a[1:]} vs {b[1:]}"
        return None
    return diff_fingerprints(a[1], b[1], rtol, sigma_slack_aliases)


# -- the check context --------------------------------------------------------


class CheckContext:
    """Shared state for checking many statements against one schema.

    Holds the fuzz tables and a persistent plain :class:`Database`
    (keeping its calibrated cost model warm for budget queries);
    catalog databases are built fresh per reuse check so one
    statement's synopses never serve another's.  Every database grows
    the same deterministic ``fact`` version history
    (:func:`install_fuzz_versions`), so generated ``AT VERSION`` pins
    and coordinated version differences check exactly like any other
    statement — including the exact oracle, which nets the two sides
    at rate 1.
    """

    def __init__(
        self,
        data_seed: int = 0,
        *,
        max_trials: int = 60,
        tables: dict[str, dict] | None = None,
    ) -> None:
        arrays = tables if tables is not None else build_fuzz_tables(data_seed)
        self.tables = {
            name: Table(name, cols) for name, cols in arrays.items()
        }
        self.data_seed = data_seed
        self.db = Database.from_tables(self.tables)
        self._install_versions(self.db)
        self.max_trials = max_trials
        # The mmap twin: the same tables persisted to the columnar
        # layout once and memory-mapped back, so the determinism check
        # can difference the storage backends.  The directory object is
        # held for the context's lifetime (mapped files must outlive
        # every query).
        import os
        import tempfile

        self._mmap_dir = tempfile.TemporaryDirectory(prefix="repro-fuzz-mmap-")
        self.mmap_db = Database()
        for name, table in self.tables.items():
            self.mmap_db.register(
                name, table.persist(os.path.join(self._mmap_dir.name, name))
            )
        self._install_versions(self.mmap_db)

    def _install_versions(self, db: Database) -> None:
        """Grow the fact table's snapshot history on one database.

        The mutations are deterministic in ``data_seed`` and the fact
        contents, so every database a check compares (plain, mmap twin,
        catalog rebuilds) carries a bit-identical version chain and
        versioned statements stay differential.
        """
        if "fact" in self.tables:
            install_fuzz_versions(db, self.data_seed)

    def fresh_db(self, *, catalog: bool = False) -> Database:
        db = Database.from_tables(self.tables, catalog=catalog)
        self._install_versions(db)
        return db

    # -- individual checks -------------------------------------------------

    def check_roundtrip(self, statement: str, seed: int) -> list[CheckFailure]:
        """``parse ∘ print`` fixed point + planner acceptance."""
        try:
            first = parse(statement)
            printed = query_to_sql(first)
            second = parse(printed)
        except ReproError as exc:
            return [
                CheckFailure("roundtrip", statement, seed, f"parse error: {exc}")
            ]
        if first != second:
            return [
                CheckFailure(
                    "roundtrip",
                    statement,
                    seed,
                    f"AST changed across print/parse:\n{printed}",
                )
            ]
        try:
            self.db.plan_sql(statement)
        except ReproError as exc:
            return [
                CheckFailure("plan", statement, seed, f"planner rejected: {exc}")
            ]
        return []

    def check_oracle(self, statement: str, seed: int) -> list[CheckFailure]:
        """Estimator at rate 1 vs the exact executor.

        An :class:`EstimationError` refusal at rate 1 is accepted only
        where exactness has nothing definite to say either — the exact
        answer is NaN (AVG over no rows) or has no groups at all; a
        refusal of a well-defined exact answer is a failure.
        """
        stripped = oracle_statement(statement)
        query = parse(stripped)
        group_keys = tuple(c.name for c in query.group_by)
        try:
            exact = _table_fingerprint(
                self.db.sql_exact(stripped), group_keys
            )
        except ReproError as exc:
            return [
                CheckFailure(
                    "oracle", statement, seed, f"exact executor error: {exc}"
                )
            ]
        try:
            estimated = fingerprint(self.db.sql(stripped, seed=seed))
        except EstimationError as exc:
            if _is_degenerate_exact(exact, group_keys):
                return []
            return [
                CheckFailure(
                    "oracle",
                    statement,
                    seed,
                    f"estimator(rate=1) refused a well-defined exact "
                    f"answer: {exc}",
                )
            ]
        except ReproError as exc:
            return [
                CheckFailure(
                    "oracle", statement, seed, f"execution error: {exc}"
                )
            ]
        detail = diff_fingerprints(estimated, exact, ORACLE_RTOL)
        if detail is not None:
            return [
                CheckFailure(
                    "oracle",
                    statement,
                    seed,
                    f"estimator(rate=1) != exact: {detail}",
                )
            ]
        return []

    def check_determinism(self, statement: str, seed: int) -> list[CheckFailure]:
        """Serial vs chunked vs cross-worker-count vs mmap agreement."""
        query = parse(statement)
        quantile_aliases = frozenset(
            item.alias
            for item in query.items
            if isinstance(item.expression, ast.QuantileCall)
        )
        # workers=0 forces the legacy serial path even when the ambient
        # environment (REPRO_WORKERS) routes queries through the
        # chunked executor — the baseline must actually be serial.
        serial = _outcome(self.db.sql, statement, seed=seed, workers=0)
        w1 = _outcome(self.db.sql, statement, seed=seed, workers=1)
        w3 = _outcome(self.db.sql, statement, seed=seed, workers=3)
        failures = []
        detail = diff_outcomes(w1, w3, 0.0)
        if detail is not None:
            failures.append(
                CheckFailure(
                    "determinism",
                    statement,
                    seed,
                    f"workers=1 vs workers=3 not bit-identical: {detail}",
                )
            )
        detail = diff_outcomes(serial, w1, SERIAL_CHUNKED_RTOL, quantile_aliases)
        if detail is not None:
            failures.append(
                CheckFailure(
                    "determinism",
                    statement,
                    seed,
                    f"serial vs chunked disagree: {detail}",
                )
            )
        if query.budget is None:
            # Budget queries recalibrate a cost model per database from
            # timing micro-probes, so the chosen design (and thus the
            # answer) is legitimately db-instance-specific; every other
            # statement must be bit-identical across storage backends.
            mmap_w1 = _outcome(self.mmap_db.sql, statement, seed=seed, workers=1)
            detail = diff_outcomes(w1, mmap_w1, 0.0)
            if detail is not None:
                failures.append(
                    CheckFailure(
                        "determinism",
                        statement,
                        seed,
                        f"mmap backend vs in-RAM not bit-identical: {detail}",
                    )
                )
        return failures

    def check_reuse(self, statement: str, seed: int) -> list[CheckFailure]:
        """Catalog miss, then hit, vs a catalog-free run — all equal.

        Bit-equality is pinned to the serial path (``workers=0``): the
        catalog populates and serves from the *materialized* sample,
        while the catalog-free chunked path merges per-chunk folds —
        the same sample bits summed in a different order.  Chunked
        execution gets its own catalog comparison below, at the same
        tolerance the serial-vs-chunked determinism check uses.
        """
        query = parse(statement)
        if query.budget is not None:
            return []  # the optimizer owns its own sampling design
        plain = _outcome(self.fresh_db().sql, statement, seed=seed, workers=0)
        with_catalog = self.fresh_db(catalog=True)
        miss = _outcome(with_catalog.sql, statement, seed=seed, workers=0)
        hit = _outcome(with_catalog.sql, statement, seed=seed, workers=0)
        failures = []
        detail = diff_outcomes(plain, miss, 0.0)
        if detail is not None:
            failures.append(
                CheckFailure(
                    "reuse",
                    statement,
                    seed,
                    f"catalog miss differs from catalog-free run: {detail}",
                )
            )
        detail = diff_outcomes(miss, hit, 0.0)
        if detail is not None:
            failures.append(
                CheckFailure(
                    "reuse",
                    statement,
                    seed,
                    f"catalog hit differs from miss: {detail}",
                )
            )
        quantile_aliases = frozenset(
            item.alias
            for item in query.items
            if isinstance(item.expression, ast.QuantileCall)
        )
        chunked = _outcome(self.fresh_db().sql, statement, seed=seed, workers=2)
        chunked_miss = _outcome(self.fresh_db(catalog=True).sql, statement, seed=seed, workers=2)
        detail = diff_outcomes(chunked, chunked_miss, SERIAL_CHUNKED_RTOL, quantile_aliases)
        if detail is not None:
            failures.append(
                CheckFailure(
                    "reuse",
                    statement,
                    seed,
                    f"chunked catalog miss vs catalog-free run beyond "
                    f"fold tolerance: {detail}",
                )
            )
        return failures

    def _design_gates(self, query: ast.SelectQuery) -> tuple[bool, bool]:
        """``(drift eligible, coverage eligible)`` for a sampling design.

        Both are static properties of the statement against the fuzz
        table sizes; see :data:`DRIFT_MIN_FRACTION`,
        :data:`COVERAGE_MIN_ROWS` and :data:`COVERAGE_MIN_BLOCKS` for
        the regimes they encode.  A clause keeping the whole table
        (``fraction >= 1``) is always coverage-eligible: the estimate
        is exact, so its interval trivially covers.
        """
        drift_ok = coverage_ok = True
        for ref in query.tables:
            sample = ref.sample
            if sample is None:
                continue
            n_rows = self.tables[ref.name].n_rows
            if sample.kind == "percent":
                fraction = sample.amount / 100.0
                units = fraction * n_rows
                minimum = COVERAGE_MIN_ROWS
            elif sample.kind == "rows":
                fraction = (
                    min(sample.amount / n_rows, 1.0) if n_rows else 1.0
                )
                units = min(sample.amount, n_rows)
                minimum = COVERAGE_MIN_ROWS
            else:  # block designs: units are kept blocks
                total = -(-n_rows // sample.rows_per_block)
                if sample.kind == "system_percent":
                    fraction = sample.amount / 100.0
                    units = fraction * total
                else:
                    fraction = (
                        min(sample.amount / total, 1.0) if total else 1.0
                    )
                    units = min(sample.amount, total)
                minimum = COVERAGE_MIN_BLOCKS
            drift_ok = drift_ok and fraction >= DRIFT_MIN_FRACTION
            coverage_ok = coverage_ok and (
                fraction >= 1.0 or units >= minimum
            )
        return drift_ok, coverage_ok

    def check_statistical(self, statement: str, seed: int) -> list[CheckFailure]:
        """Sequential unbiasedness + CI-coverage test over trials.

        Only ungrouped, non-budget, sampled statements are eligible
        (grouped coverage is checked per group by the dedicated suites;
        budget queries verify their own realized widths).  Trials
        re-randomize both the engine seed and any ``REPEATABLE``
        clauses.

        The drift guard feeds on **every** completed trial: a SUM over
        an empty draw estimates 0, and those zeros are exactly what
        balances the lucky draws in expectation — conditioning on
        "the sample was non-trivial" would make a perfectly unbiased
        estimator look biased.  When a trial is *refused* outright (an
        AVG over an empty draw raises instead of completing), that
        conditioning is unavoidable, so any drift verdict the
        surviving trials produced is discarded.  Each test only runs on designs where
        its inference is sound (:meth:`_design_gates`): the drift guard
        needs every draw to see a real fraction of its tables, coverage
        needs enough rows (or blocks, for block designs) behind σ̂.
        Coverage uses the distribution-free Chebyshev form, since
        intervals built from a tail-blind σ̂ legitimately under-cover
        at small sample sizes — a property of variance estimation, not
        an estimator bug.
        """
        query = parse(statement)
        if (
            query.group_by
            or query.budget is not None
            or not _is_sampled(query)
        ):
            return []
        drift_ok, coverage_ok = self._design_gates(query)
        if not (drift_ok or coverage_ok):
            return []  # no sound statistical test for this design
        try:
            truth = _table_fingerprint(
                self.db.sql_exact(oracle_statement(statement)), ()
            )
        except ReproError:
            return []  # check_oracle owns reporting execution problems
        coverage = {
            alias: BernoulliSPRT(COVERAGE_P_PASS, COVERAGE_P_FAIL)
            for alias in truth
        } if coverage_ok else {}
        drift = {
            alias: SequentialBiasGuard(min_n=DRIFT_MIN_N) for alias in truth
        } if drift_ok else {}
        refused = 0
        for trial in range(self.max_trials):
            if all(
                test.decision != "undecided"
                for tests in (coverage, drift)
                for test in tests.values()
            ):
                break
            trial_stmt = reseeded_statement(statement, trial)
            try:
                result = self.db.sql(
                    trial_stmt, seed=seed + 7919 * (trial + 1)
                )
            except EstimationError:
                refused += 1
                continue  # refused trial (e.g. empty sample): no evidence
            except ReproError as exc:
                return [
                    CheckFailure(
                        "statistical",
                        statement,
                        seed,
                        f"trial {trial} execution error: {exc}",
                    )
                ]
            for alias, expected in truth.items():
                if math.isnan(expected):
                    continue
                est = result.estimates[alias]
                if drift_ok:
                    drift[alias].observe(est.value - expected)
                # Subset-sum (version-difference) estimates report how
                # many sampled keys actually changed: the netted g is 0
                # everywhere else, so only those keys inform σ̂ and the
                # effective sample size is their count, not n_sample.
                n_effective = est.extras.get("nonzero", est.n_sample)
                if not coverage_ok or n_effective < COVERAGE_MIN_ROWS:
                    # The a-priori gate sees per-table draw sizes only;
                    # join and predicate selectivity can shrink the
                    # *surviving* sample back into the tail-blind-σ̂
                    # regime (50 WOR rows joined to a 3-row dimension
                    # leave ~10), so the observed n gates each trial.
                    continue
                ci = est.ci(0.95, method="chebyshev")
                if not (math.isfinite(ci.lo) and math.isfinite(ci.hi)):
                    continue
                coverage[alias].observe(ci.lo <= expected <= ci.hi)
        failures = []
        for alias, test in coverage.items():
            if test.decision == "reject":
                failures.append(
                    CheckFailure(
                        "statistical",
                        statement,
                        seed,
                        f"CI coverage for {alias!r} rejected by SPRT: "
                        f"{test.hits}/{test.n} hits (LLR {test.llr:.2f})",
                    )
                )
        for alias, guard in drift.items():
            if refused:
                # Refused trials (an AVG over an empty draw raises)
                # were dropped, conditioning the surviving trials on a
                # non-empty sample — and conditional on non-emptiness
                # even a perfectly unbiased HT estimator reads high (on
                # a 3-row table at a 25 % rate the conditional mean of
                # ``COUNT(*)/p`` is 5.2, not 3).  No sound drift
                # verdict exists for this statement; abstain.
                break
            if guard.decision == "reject":
                v = guard.verdict()
                failures.append(
                    CheckFailure(
                        "statistical",
                        statement,
                        seed,
                        f"mean error for {alias!r} drifts from 0: "
                        f"self-normalized t = {v.statistic:.2f} after "
                        f"{v.n} trials",
                    )
                )
        return failures


def check_statement(
    ctx: CheckContext,
    statement: str,
    seed: int,
    *,
    statistical: bool = False,
) -> list[CheckFailure]:
    """Run every eligible check; empty list = statement survived."""
    failures = ctx.check_roundtrip(statement, seed)
    if failures:
        return failures  # nothing downstream is meaningful
    failures.extend(ctx.check_oracle(statement, seed))
    failures.extend(ctx.check_determinism(statement, seed))
    failures.extend(ctx.check_reuse(statement, seed))
    if statistical:
        failures.extend(ctx.check_statistical(statement, seed))
    return failures
