"""Time-boxed fuzz campaigns: generate → check → shrink → report.

``run_fuzz`` drives a deterministic query stream against the check
battery until the time budget runs out, shrinks every failure to a
minimal statement + seed, and returns a :class:`FuzzReport` that
serializes to the JSON artifact the CI job uploads.  The stream is a
pure function of the seed, so any failure replays from
``(seed, query index)`` — and the shrunk case replays from just its
statement + seed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.fuzz.checker import CheckContext, check_statement
from repro.fuzz.generator import QueryGenerator
from repro.fuzz.shrink import ReproCase, shrink_failure
from repro.sql.printer import query_to_sql

__all__ = ["FuzzReport", "run_fuzz"]

#: Run the (expensive) statistical check on every k-th query.
STATISTICAL_EVERY = 6


@dataclass
class FuzzReport:
    """Everything one fuzz campaign produced."""

    seed: int
    seconds: float
    queries: int = 0
    statistical_queries: int = 0
    failures: list[ReproCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "seconds": self.seconds,
            "queries": self.queries,
            "statistical_queries": self.statistical_queries,
            "ok": self.ok,
            "failures": [
                {
                    "kind": case.kind,
                    "statement": case.statement,
                    "seed": case.seed,
                    "detail": case.detail,
                    "test_source": case.test_source(),
                }
                for case in self.failures
            ],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)
            handle.write("\n")

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.queries} queries "
            f"({self.statistical_queries} with sequential statistical "
            f"acceptance) in {self.seconds:.1f}s, seed {self.seed}: "
            + ("all checks passed" if self.ok else
               f"{len(self.failures)} SURVIVING FAILURE(S)")
        ]
        for case in self.failures:
            lines.append(
                f"  [{case.kind}] seed={case.seed}: {case.detail}"
            )
            lines.extend(
                "    " + line for line in case.statement.splitlines()
            )
        return "\n".join(lines)


def run_fuzz(
    seconds: float = 60.0,
    seed: int = 0,
    *,
    max_queries: int | None = None,
    ctx: CheckContext | None = None,
    clock=time.perf_counter,
) -> FuzzReport:
    """Fuzz until the time budget (or ``max_queries``) is exhausted.

    Each query gets a derived per-query seed, the statistical check
    runs on every :data:`STATISTICAL_EVERY`-th query, and every
    failure is shrunk before being recorded (shrinking re-runs checks,
    so it shares the time budget).
    """
    if ctx is None:
        ctx = CheckContext()
    generator = QueryGenerator(seed)
    report = FuzzReport(seed=seed, seconds=seconds)
    deadline = clock() + seconds
    index = 0
    while clock() < deadline:
        if max_queries is not None and index >= max_queries:
            break
        statement = query_to_sql(generator.query())
        query_seed = seed * 1_000_003 + index
        statistical = index % STATISTICAL_EVERY == 0
        failures = check_statement(
            ctx, statement, query_seed, statistical=statistical
        )
        report.queries += 1
        if statistical:
            report.statistical_queries += 1
        for failure in failures[:1]:  # shrink the first failure per query
            report.failures.append(shrink_failure(ctx, failure))
        index += 1
    report.seconds = seconds
    return report
