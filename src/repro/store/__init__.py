"""Sample-synopsis catalog: store samples once, answer many queries.

The paper's algebra makes sample reuse *decidable*: two sampled plans
over the same relational core are comparable purely through their GUS
parameters, so a stored sample can serve an exact repeat, a
further-filtered query (predicate pushdown), or any lower-rate query
(residual Bernoulli thinning with compacted coefficients).  This
package provides the catalog (:class:`SynopsisCatalog`), the canonical
fingerprints (:func:`canonicalize`), and the reuse matcher
(:class:`ReuseMatcher`); the SBox consults them transparently when a
:class:`~repro.relational.database.Database` is built with
``catalog=``.
"""

from repro.store.catalog import (
    CatalogStats,
    Synopsis,
    SynopsisCatalog,
    table_nbytes,
)
from repro.store.fingerprint import (
    CanonicalPlan,
    DimensionDesign,
    SamplingDesign,
    canonicalize,
    conjuncts,
)
from repro.store.matcher import (
    ReuseDecision,
    ReuseInfo,
    ReuseMatcher,
    choose,
    materialize,
    thin_seed,
    thinned_params,
)

__all__ = [
    "CanonicalPlan",
    "CatalogStats",
    "DimensionDesign",
    "ReuseDecision",
    "ReuseInfo",
    "ReuseMatcher",
    "SamplingDesign",
    "Synopsis",
    "SynopsisCatalog",
    "canonicalize",
    "choose",
    "conjuncts",
    "materialize",
    "table_nbytes",
    "thin_seed",
    "thinned_params",
]
