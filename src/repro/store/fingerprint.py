"""Canonical plan fingerprints for the sample-synopsis catalog.

The catalog's whole premise is the paper's closure result: *which*
stored sample can answer *which* query is decidable from the sampling
algebra alone.  To apply it we split a sampled plan into three
orthogonal parts:

* the **core** — the sampling-free, selection-free relational skeleton
  (scans, joins, cross products), identified by a structural key;
* the **predicates** — every ``Select`` conjunct, hoisted to the top.
  Selections commute with lineage sampling (both are row masks, one on
  content, one on lineage), so a stored sample of the unselected core
  filtered by a predicate *is* a sample of the selected expression,
  with the same GUS parameters (Proposition 5);
* the **sampling design** — per base relation, the stack of sampling
  operators, summarized by family and first-order inclusion rate.
  Where in the plan a lineage-keyed sampler sits does not change the
  surviving rows (the keep decision is a pure function of lineage), so
  the design is placement-free.

Two plans with the same core key are samples of the same expression;
the :mod:`~repro.store.matcher` then decides from designs and
predicates whether one subsumes the other.

Plans containing nodes whose reuse algebra we do not model (unions,
intersections, projections that rename columns, analysis-only GUS
nodes) are not canonicalizable; :func:`canonicalize` returns ``None``
and the caller falls back to fresh execution.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from repro.relational import plan as p
from repro.relational.expressions import And, Expr
from repro.sampling.base import SamplingMethod
from repro.sampling.bernoulli import Bernoulli
from repro.sampling.pseudorandom import LineageHashBernoulli

#: Slack for rate comparisons (rates are plain floats from SQL text).
RATE_TOL = 1e-12


def conjuncts(expr: Expr) -> Iterator[Expr]:
    """Split a predicate into its top-level AND conjuncts."""
    if isinstance(expr, And):
        yield from conjuncts(expr.left)
        yield from conjuncts(expr.right)
    else:
        yield expr


@dataclass(frozen=True)
class DimensionDesign:
    """The combined sampling design along one lineage dimension.

    ``rate`` is the first-order inclusion probability ``a`` of the
    (stacked) samplers on this relation; ``bernoulli`` is True when
    every sampler in the stack is a tuple-level Bernoulli-family
    method, the precondition for treating the dimension's rate as
    freely thinnable; ``exact`` is the full identity of the stack
    (descriptions include seeds), used for exact-design matching;
    ``rng_drawn`` is True when any sampler in the stack draws from the
    executor RNG (plain Bernoulli, WOR, block draws) — its realization
    then depends on the RNG seed, not just the description, so exact
    identity additionally needs the plan's draw token.
    """

    relation: str
    rate: float
    bernoulli: bool
    exact: tuple
    rng_drawn: bool = False

    def merge(self, other: "DimensionDesign") -> "DimensionDesign":
        """Stack another sampler onto this dimension (rates multiply)."""
        return DimensionDesign(
            relation=self.relation,
            rate=self.rate * other.rate,
            bernoulli=self.bernoulli and other.bernoulli,
            exact=tuple(sorted(self.exact + other.exact)),
            rng_drawn=self.rng_drawn or other.rng_drawn,
        )


@dataclass(frozen=True)
class SamplingDesign:
    """The per-relation sampling designs of one plan, canonically ordered."""

    dims: tuple[DimensionDesign, ...]

    @property
    def exact_key(self) -> tuple:
        return tuple((d.relation, d.exact) for d in self.dims)

    @property
    def rates(self) -> dict[str, float]:
        return {d.relation: d.rate for d in self.dims}

    def rate_of(self, relation: str) -> float:
        for d in self.dims:
            if d.relation == relation:
                return d.rate
        return 1.0

    def bernoulli_only(self) -> bool:
        return all(d.bernoulli for d in self.dims)

    def rng_drawn(self) -> bool:
        """True when any dimension's realization depends on the RNG."""
        return any(d.rng_drawn for d in self.dims)

    @property
    def sampled_relations(self) -> frozenset[str]:
        return frozenset(d.relation for d in self.dims)


@dataclass(frozen=True)
class CanonicalPlan:
    """A sampled plan, factored for algebra-driven reuse matching.

    ``draw_token`` identifies the executor RNG stream the plan's
    RNG-drawn samplers (if any) would consume; it is ``None`` for
    fully hash-keyed designs, whose realization is independent of the
    RNG.  Two plans with RNG-drawn samplers are only *exactly* the
    same request when their tokens agree — otherwise the user asked
    for an independent draw.
    """

    core_key: tuple
    relations: frozenset[str]
    design: SamplingDesign
    predicates: tuple[Expr, ...] = field(repr=False)
    pred_keys: frozenset = field(default_factory=frozenset)
    draw_token: int | None = None

    @property
    def exact_key(self) -> tuple:
        """Full identity: core + design (seeds + draw token) + predicates."""
        token = self.draw_token if self.design.rng_drawn() else None
        return (
            self.core_key,
            self.design.exact_key,
            token,
            tuple(sorted(self.pred_keys)),
        )


def _method_dimension(
    relation: str,
    method: SamplingMethod,
    sizes: Mapping[str, int],
    placement: str,
) -> DimensionDesign | None:
    """Describe one sampling operator on one relation, or ``None``."""
    n_rows = sizes.get(relation)
    if n_rows is None:
        return None
    try:
        rate = float(method.gus(relation, n_rows).a)
    except Exception:  # not a GUS (e.g. with-replacement draws)
        return None
    if not math.isfinite(rate):
        return None
    bernoulli = isinstance(method, (Bernoulli, LineageHashBernoulli))
    return DimensionDesign(
        relation=relation,
        rate=rate,
        bernoulli=bernoulli,
        exact=((placement, method.describe()),),
        # Hash-keyed filters are pure functions of lineage; everything
        # else realizes through the executor RNG.
        rng_drawn=not isinstance(method, LineageHashBernoulli),
    )


class _NotCanonical(Exception):
    """Internal: the plan contains a node outside the reuse algebra."""


def draw_token_of(rng) -> int:
    """Stable identity of a generator's current stream position.

    Two calls that would consume the same RNG stream (same seed, same
    position) get the same token; anything else differs.  Used to keep
    RNG-drawn sampling designs from exact-matching across genuinely
    independent draws.
    """
    import hashlib

    state = repr(rng.bit_generator.state).encode()
    return int.from_bytes(
        hashlib.blake2b(state, digest_size=8).digest(), "big"
    )


def canonicalize(
    plan: p.PlanNode,
    sizes: Mapping[str, int],
    *,
    draw_token: int | None = None,
) -> CanonicalPlan | None:
    """Factor a sampled plan into (core, predicates, design).

    ``sizes`` supplies base-table cardinalities so fixed-size methods
    (WOR, block draws) can report their inclusion rate; ``draw_token``
    the executor RNG identity (see :func:`draw_token_of`), used only
    when the design contains RNG-drawn samplers.  Returns ``None``
    when the plan is outside the supported node set — the caller must
    then execute fresh.
    """
    preds: list[Expr] = []
    dims: dict[str, DimensionDesign] = {}

    def visit(node: p.PlanNode) -> tuple:
        if isinstance(node, p.Scan):
            return ("scan", node.table_name)
        if isinstance(node, p.TableSample):
            dim = _method_dimension(
                node.child.table_name, node.method, sizes, "tablesample"
            )
            if dim is None:
                raise _NotCanonical
            rel = dim.relation
            dims[rel] = dims[rel].merge(dim) if rel in dims else dim
            return visit(node.child)
        if isinstance(node, p.LineageSample):
            for rel, filt in node.sampler.filters.items():
                dim = _method_dimension(rel, filt, sizes, "lineage")
                if dim is None:
                    raise _NotCanonical
                dims[rel] = dims[rel].merge(dim) if rel in dims else dim
            return visit(node.child)
        if isinstance(node, p.Select):
            preds.extend(conjuncts(node.predicate))
            return visit(node.child)
        if isinstance(node, p.Project) and node.outputs is None:
            # Pure pass-through; column pruning is re-derived on reuse.
            return visit(node.child)
        if isinstance(node, p.Join):
            return (
                "join",
                node.left_keys,
                node.right_keys,
                visit(node.left),
                visit(node.right),
            )
        if isinstance(node, p.CrossProduct):
            return ("cross", visit(node.left), visit(node.right))
        raise _NotCanonical

    try:
        core_key = visit(plan)
    except _NotCanonical:
        return None
    design = SamplingDesign(
        dims=tuple(dims[rel] for rel in sorted(dims))
    )
    pred_keys = frozenset(pr.key() for pr in preds)
    return CanonicalPlan(
        core_key=core_key,
        relations=plan.lineage_schema(),
        design=design,
        predicates=tuple(preds),
        pred_keys=pred_keys,
        draw_token=draw_token,
    )
