"""Algebra-driven reuse matching over the synopsis catalog.

Given a new query's :class:`~repro.store.fingerprint.CanonicalPlan`
and the stored synopses of the same core expression, decide whether a
stored sample *subsumes* the query's sampling plan, and how to serve
it.  Three reuse modes, in preference order:

* **exact** — identical design (seeds included) and identical
  predicates: the stored realization is the query's sample; the
  estimate recomputed from it is bit-identical to the run that stored
  it.
* **pushdown** — identical design, but the query filters *more*: the
  stored predicates are a subset of the query's.  Selection commutes
  with every GUS (Proposition 5), so applying the residual conjuncts
  to the stored sample yields a correct sample of the selected
  expression under the *same* GUS parameters.
* **thin** — the stored design strictly dominates the query's rates:
  every relation's stored inclusion rate is at least the requested
  rate.  A residual lineage-keyed Bernoulli at rate
  ``requested / stored`` per relation thins the stored sample; the
  served sample is then a genuine GUS sample whose parameters are the
  **compaction** (Proposition 8) of the stored parameters with the
  residual filters' — correctness comes from rescaling the GUS
  coefficients through the algebra, never from re-deriving the
  estimator.  The query side must be Bernoulli-family (its rates are
  free parameters); the stored side may be *any* GUS.

The residual thinning seeds are a stable hash of (stored design,
relation, requested design), so the same request thins the same way
every time — including after an eviction-and-repopulate or a process
restart — while differently-seeded requests get independent residual
draws.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.algebra import compact_gus, compose_gus, lift_gus
from repro.core.gus import GUSParams, bernoulli_gus
from repro.relational import plan as p
from repro.relational.expressions import Expr
from repro.relational.table import Table
from repro.sampling.pseudorandom import LineageHashBernoulli
from repro.store.catalog import Synopsis, SynopsisCatalog
from repro.store.fingerprint import RATE_TOL, CanonicalPlan

_KIND_RANK = {"exact": 0, "pushdown": 1, "thin": 2}


@dataclass(frozen=True)
class ReuseInfo:
    """How a query result was served from the catalog (for observability)."""

    kind: str
    entry_id: int
    stored_rows: int
    served_rows: int
    thin_rates: tuple[tuple[str, float], ...] = ()
    residual_predicates: int = 0


@dataclass(frozen=True)
class ReuseDecision:
    """A chosen synopsis plus the residual work to serve the query.

    ``design_token`` folds the *query's* full sampling identity
    (design incl. seeds, plus the RNG draw token) into the residual
    thinning seeds: two queries at the same reduced rate but different
    identities (REPEATABLE(5) vs REPEATABLE(6)) get independent
    residual draws instead of collapsing onto one realization, while
    repeats of the same statement stay deterministic.
    """

    synopsis: Synopsis
    kind: str
    residual: tuple[Expr, ...] = field(repr=False, default=())
    thin_rates: tuple[tuple[str, float], ...] = ()
    design_token: int = 0


def design_token_of(canon: CanonicalPlan) -> int:
    """Stable identity of a query's requested sampling design.

    The RNG draw token only participates for RNG-drawn designs —
    hash-keyed designs realize independently of the executor RNG, so
    repeats of the same statement must map to the same token whatever
    ``seed=`` the call carries.
    """
    draw = canon.draw_token if canon.design.rng_drawn() else None
    text = repr((canon.design.exact_key, draw)).encode()
    return int.from_bytes(
        hashlib.blake2b(text, digest_size=8).digest(), "big"
    )


def stored_token_of(syn: Synopsis) -> int:
    """Stable identity of a stored synopsis (its full exact key).

    Deliberately *not* the entry id: the same stored design must thin
    the same way after an eviction-and-repopulate or a process
    restart, so identical requests keep identical answers.
    """
    text = repr(syn.canon.exact_key).encode()
    return int.from_bytes(
        hashlib.blake2b(text, digest_size=8).digest(), "big"
    )


def thin_seed(stored_token: int, relation: str, design_token: int = 0) -> int:
    """Stable per-(stored-design, relation, requested-design) seed."""
    digest = hashlib.blake2b(
        f"synopsis-thin:{stored_token}:{relation}:{design_token}".encode(),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") & (2**63 - 1)


def _decide(canon: CanonicalPlan, syn: Synopsis) -> ReuseDecision | None:
    """Can this synopsis serve this query?  (Pure; no catalog state.)"""
    stored = syn.canon
    if not stored.pred_keys <= canon.pred_keys:
        return None  # the stored sample is *more* filtered: unusable
    residual = tuple(
        pr for pr in canon.predicates if pr.key() not in stored.pred_keys
    )
    same_design = stored.design.exact_key == canon.design.exact_key
    if same_design and stored.design.rng_drawn():
        # RNG-drawn designs realize through the executor stream: only
        # the same stream position is the same request.
        same_design = stored.draw_token == canon.draw_token
    if same_design:
        kind = "exact" if not residual else "pushdown"
        return ReuseDecision(synopsis=syn, kind=kind, residual=residual)
    # Rate subsumption: the query's rates must be freely choosable
    # (Bernoulli family) and dominated by the stored rates everywhere.
    if not canon.design.bernoulli_only():
        return None
    thin: list[tuple[str, float]] = []
    for rel in sorted(
        stored.design.sampled_relations | canon.design.sampled_relations
    ):
        want = canon.design.rate_of(rel)
        have = syn.canon.design.rate_of(rel)
        if want > have + RATE_TOL:
            return None  # stored sample is too thin on this dimension
        if have <= 0.0:
            return None
        ratio = min(1.0, want / have)
        if ratio < 1.0 - RATE_TOL:
            thin.append((rel, ratio))
    if not thin:
        # Same rates but a different identity (different REPEATABLE
        # seed or an independent RNG draw): the user asked for a
        # *different realization* at this rate, and serving the stored
        # one would silently correlate replicates.  Reuse only ever
        # swaps realizations alongside a genuine rate reduction.
        return None
    return ReuseDecision(
        synopsis=syn,
        kind="thin",
        residual=residual,
        thin_rates=tuple(thin),
        design_token=design_token_of(canon),
    )


def choose(
    canon: CanonicalPlan,
    candidates: list[Synopsis],
    *,
    required_columns: frozenset[str] = frozenset(),
) -> ReuseDecision | None:
    """Pick the best usable synopsis: exact > pushdown > thin, then
    fewest residual operations, then the smallest stored sample."""
    best: ReuseDecision | None = None
    best_rank: tuple | None = None
    for syn in candidates:
        if not required_columns <= syn.columns:
            continue
        decision = _decide(canon, syn)
        if decision is None:
            continue
        rank = (
            _KIND_RANK[decision.kind],
            len(decision.residual) + len(decision.thin_rates),
            syn.n_rows,
            syn.entry_id,
        )
        if best_rank is None or rank < best_rank:
            best, best_rank = decision, rank
    return best


def thinned_params(
    stored: GUSParams, thin_rates: tuple[tuple[str, float], ...]
) -> GUSParams:
    """Rescale stored GUS coefficients for residual Bernoulli thinning.

    The thinned sample's process is the stored process *compacted*
    (Proposition 8) with one independent lineage-keyed Bernoulli per
    thinned relation — composed across relations (Proposition 9) and
    lifted onto the stored schema (Proposition 4).
    """
    if not thin_rates:
        return stored
    residual: GUSParams | None = None
    for rel, ratio in thin_rates:
        g = bernoulli_gus(rel, ratio)
        residual = g if residual is None else compose_gus(residual, g)
    assert residual is not None
    return compact_gus(lift_gus(residual, stored.schema), stored)


def materialize(
    decision: ReuseDecision,
) -> tuple[Table, GUSParams, p.PlanNode, ReuseInfo]:
    """Serve a query's sample from a stored synopsis.

    Applies the residual predicates, then the residual thinning
    filters, and returns the served sample, its (rescaled) GUS
    parameters, a clean plan for EXPLAIN purposes, and the
    :class:`ReuseInfo` trace.
    """
    syn = decision.synopsis
    sample = syn.sample
    clean = syn.clean_plan
    for pred in decision.residual:
        mask = np.asarray(pred.eval(sample), dtype=bool)
        sample = sample.filter(mask)
        clean = p.Select(clean, pred)
    stored_token = stored_token_of(syn)
    for rel, ratio in decision.thin_rates:
        filt = LineageHashBernoulli(
            ratio,
            seed=thin_seed(stored_token, rel, decision.design_token),
        )
        sample = sample.filter(filt.keep(sample.lineage[rel]))
    params = thinned_params(syn.params, decision.thin_rates)
    info = ReuseInfo(
        kind=decision.kind,
        entry_id=syn.entry_id,
        stored_rows=syn.n_rows,
        served_rows=sample.n_rows,
        thin_rates=decision.thin_rates,
        residual_predicates=len(decision.residual),
    )
    return sample, params, clean, info


class ReuseMatcher:
    """Catalog-backed matcher: probe, account, and serve."""

    def __init__(self, catalog: SynopsisCatalog) -> None:
        self.catalog = catalog

    def peek(
        self,
        canon: CanonicalPlan,
        *,
        required_columns: frozenset[str] = frozenset(),
    ) -> ReuseDecision | None:
        """Non-accounting probe (used by the optimizer's cost scoring)."""
        return choose(
            canon,
            self.catalog.candidates(canon),
            required_columns=required_columns,
        )

    def match(
        self,
        canon: CanonicalPlan,
        *,
        required_columns: frozenset[str] = frozenset(),
    ) -> ReuseDecision | None:
        """Accounting probe: records the hit or miss in catalog stats."""
        decision = self.peek(canon, required_columns=required_columns)
        if decision is None:
            self.catalog.record_miss()
        else:
            self.catalog.record_hit(decision.synopsis, decision.kind)
        return decision
