"""The persistent sample-synopsis catalog.

A *synopsis* is everything needed to answer future aggregate queries
from an already-paid-for sample: the materialized sample table (with
lineage), the top GUS parameters of the sampled plan, the sampling-free
clean plan, and the canonical fingerprint it was stored under.  The
catalog keys synopses by the canonical **core** fingerprint (the
sampling- and selection-free skeleton) so that one stored sample can
serve exact repeats, further-filtered queries (predicate pushdown), and
lower-rate queries (residual Bernoulli thinning) — the
:mod:`~repro.store.matcher` decides which, from the algebra.

Operationally the catalog is a bounded, thread-safe LRU: entries are
evicted least-recently-used when either the entry count or the byte
budget is exceeded, and are invalidated by version stamping when any
base table they were drawn from mutates (``Database`` bumps the
version on every mutation path).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.gus import GUSParams
from repro.obs.metrics import REGISTRY
from repro.relational.plan import PlanNode
from repro.relational.table import Table
from repro.store.fingerprint import CanonicalPlan

#: Default catalog bounds: entries and resident sample bytes.
DEFAULT_MAX_ENTRIES = 64
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def table_nbytes(table: Table) -> int:
    """Approximate resident bytes of a sample table."""
    total = 0
    for arr in table.columns.values():
        total += int(np.asarray(arr).nbytes)
    for ids in table.lineage.values():
        total += int(ids.nbytes)
    return total


@dataclass(frozen=True)
class Synopsis:
    """One stored sample with everything reuse needs."""

    entry_id: int
    canon: CanonicalPlan = field(repr=False)
    sample: Table = field(repr=False)
    params: GUSParams = field(repr=False)
    clean_plan: PlanNode = field(repr=False)
    versions: dict[str, int] = field(repr=False)
    nbytes: int = 0

    @property
    def n_rows(self) -> int:
        return self.sample.n_rows

    @property
    def columns(self) -> frozenset[str]:
        return frozenset(self.sample.columns)


@dataclass
class CatalogStats:
    """Cumulative catalog counters (monotone; snapshot with ``copy``)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    exact_hits: int = 0
    pushdown_hits: int = 0
    thin_hits: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def copy(self) -> "CatalogStats":
        return replace(self)


class SynopsisCatalog:
    """Bounded, thread-safe store of sample synopses keyed by core plan."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entry_bytes: int | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("catalog needs max_entries >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        # One sample may never dominate (or exceed) the whole budget:
        # oversized samples are simply not stored.
        self.max_entry_bytes = (
            int(max_entry_bytes)
            if max_entry_bytes is not None
            else max(1, self.max_bytes // 4)
        )
        self._lock = threading.RLock()
        self._entries: OrderedDict[int, Synopsis] = OrderedDict()
        self._by_key: dict[tuple, list[int]] = {}
        self._versions: dict[str, int] = {}
        self._next_id = 0
        self._bytes = 0
        self._epoch = 0
        self.stats = CatalogStats()

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def snapshot_stats(self) -> CatalogStats:
        with self._lock:
            return self.stats.copy()

    @property
    def epoch(self) -> int:
        """Monotone mutation counter: bumps on every invalidation.

        Coarse staleness signal for caches of *derived* answers (e.g.
        a service's result cache) that cannot attribute an answer to
        the tables it read: key on the epoch and any mutation anywhere
        retires the whole generation.
        """
        with self._lock:
            return self._epoch

    def version_of(self, table: str) -> int:
        with self._lock:
            return self._versions.get(table, 0)

    def version_stamps(self, tables) -> dict[str, int]:
        """Current versions of the given tables, read atomically.

        Callers that execute against a snapshot of the tables must read
        the stamps *before* taking the snapshot and pass them to
        :meth:`put` — stamping at insertion time would let a mutation
        that lands during the execution silently undo its own
        invalidation.
        """
        with self._lock:
            return {name: self._versions.get(name, 0) for name in tables}

    def candidates(self, canon: CanonicalPlan) -> list[Synopsis]:
        """Fresh (non-stale) entries stored under the canonical core key.

        Does **not** count as a lookup or touch LRU order — this is the
        probe the optimizer's scoring and the matcher both build on.
        """
        with self._lock:
            ids = self._by_key.get(canon.core_key, [])
            fresh: list[Synopsis] = []
            for entry_id in list(ids):
                syn = self._entries.get(entry_id)
                if syn is None:
                    ids.remove(entry_id)
                    continue
                if any(
                    self._versions.get(rel, 0) != stamp
                    for rel, stamp in syn.versions.items()
                ):
                    self._evict(entry_id, count_eviction=False)
                    self.stats.invalidations += 1
                    continue
                fresh.append(syn)
            return fresh

    def record_hit(self, synopsis: Synopsis, kind: str) -> None:
        """Account a served reuse and refresh the entry's LRU position."""
        with self._lock:
            self.stats.lookups += 1
            self.stats.hits += 1
            if kind == "exact":
                self.stats.exact_hits += 1
            elif kind == "pushdown":
                self.stats.pushdown_hits += 1
            else:
                self.stats.thin_hits += 1
            if synopsis.entry_id in self._entries:
                self._entries.move_to_end(synopsis.entry_id)
        REGISTRY.counter("repro_store_lookups_total").inc()
        REGISTRY.counter("repro_store_hits_total", mode=kind).inc()

    def record_miss(self) -> None:
        with self._lock:
            self.stats.lookups += 1
            self.stats.misses += 1
        REGISTRY.counter("repro_store_lookups_total").inc()
        REGISTRY.counter("repro_store_misses_total").inc()

    # -- mutation ----------------------------------------------------------

    def put(
        self,
        canon: CanonicalPlan,
        sample: Table,
        params: GUSParams,
        clean_plan: PlanNode,
        *,
        versions: Mapping[str, int] | None = None,
    ) -> Synopsis | None:
        """Store a synopsis, keeping any existing entry with the same
        identity.

        Identity is the full exact key (core + design incl. seeds +
        predicates): storing the same query twice keeps the *first*
        entry, so concurrent double-misses converge on one synopsis.
        Evicts least-recently-used entries until both bounds hold.

        ``versions`` are the :meth:`version_stamps` read before the
        sample's table snapshot was taken.  If any referenced table
        mutated since, the sample describes dead data: it is discarded
        and ``None`` returned.  Samples larger than ``max_entry_bytes``
        are not stored either — one huge sample must not evict the
        whole working set (the query's answer is unaffected; only
        reuse is skipped).
        """
        nbytes = table_nbytes(sample)
        if nbytes > self.max_entry_bytes:
            return None
        with self._lock:
            if versions is not None and any(
                self._versions.get(rel, 0) != versions.get(rel, 0)
                for rel in canon.relations
            ):
                return None  # drawn from a pre-mutation snapshot
            for other in self.candidates(canon):
                if other.canon.exact_key == canon.exact_key:
                    self._entries.move_to_end(other.entry_id)
                    return other
            syn = Synopsis(
                entry_id=self._next_id,
                canon=canon,
                sample=sample,
                params=params,
                clean_plan=clean_plan,
                # The stale check above guarantees these equal the
                # caller's pre-snapshot stamps when it supplied them.
                versions={
                    rel: self._versions.get(rel, 0)
                    for rel in canon.relations
                },
                nbytes=nbytes,
            )
            self._next_id += 1
            self._entries[syn.entry_id] = syn
            self._by_key.setdefault(canon.core_key, []).append(syn.entry_id)
            self._bytes += nbytes
            self.stats.puts += 1
            REGISTRY.counter("repro_store_puts_total").inc()
            self._enforce_bounds(keep=syn.entry_id)
            return syn

    def invalidate(self, table: str) -> int:
        """Mark a base table mutated; purge every synopsis drawn from it."""
        with self._lock:
            self._versions[table] = self._versions.get(table, 0) + 1
            self._epoch += 1
            stale = [
                entry_id
                for entry_id, syn in self._entries.items()
                if table in syn.canon.relations
            ]
            for entry_id in stale:
                self._evict(entry_id, count_eviction=False)
            self.stats.invalidations += len(stale)
        REGISTRY.counter("repro_store_invalidations_total").inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_key.clear()
            self._bytes = 0

    # -- internals ---------------------------------------------------------

    def _enforce_bounds(self, keep: int) -> None:
        """Evict LRU entries until bounds hold (never the one just put)."""
        while len(self._entries) > self.max_entries or (
            self._bytes > self.max_bytes and len(self._entries) > 1
        ):
            victim = next(
                (eid for eid in self._entries if eid != keep), None
            )
            if victim is None:
                break
            self._evict(victim, count_eviction=True)

    def _evict(self, entry_id: int, *, count_eviction: bool) -> None:
        syn = self._entries.pop(entry_id, None)
        if syn is None:
            return
        self._bytes -= syn.nbytes
        ids = self._by_key.get(syn.canon.core_key)
        if ids is not None:
            if entry_id in ids:
                ids.remove(entry_id)
            if not ids:
                del self._by_key[syn.canon.core_key]
        if count_eviction:
            self.stats.evictions += 1
            REGISTRY.counter("repro_store_evictions_total").inc()
