"""Statistical extensions: the delta method, running moments, and
sequential acceptance tests."""

from repro.stats.delta import covariance_estimate, ratio_estimate
from repro.stats.moments import RunningMoments
from repro.stats.sequential import (
    BernoulliSPRT,
    SequentialBiasGuard,
    SequentialVerdict,
)

__all__ = [
    "ratio_estimate",
    "covariance_estimate",
    "RunningMoments",
    "BernoulliSPRT",
    "SequentialBiasGuard",
    "SequentialVerdict",
]
