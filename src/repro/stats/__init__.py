"""Statistical extensions: the delta method for AVG and running moments."""

from repro.stats.delta import covariance_estimate, ratio_estimate
from repro.stats.moments import RunningMoments

__all__ = ["ratio_estimate", "covariance_estimate", "RunningMoments"]
