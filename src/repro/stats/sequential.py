"""Sequential statistical acceptance tests.

The differential fuzzer needs to decide "is this estimator unbiased
with honest confidence intervals?" from repeated randomized trials.
A fixed trial count wastes work on obviously-clean queries and gives
weak evidence on marginal ones, because per-query estimator variance
varies over orders of magnitude (cf. Szegedy & Thorup's subset-sum
variance analysis).  The classical answer is Wald's sequential
probability-ratio test: accumulate a log-likelihood ratio per
observation and stop the moment the evidence crosses either boundary,
with both error rates controlled at preset levels.

Two tests live here:

* :class:`BernoulliSPRT` — the workhorse: a two-point SPRT on
  Bernoulli indicators (here: "did the confidence interval cover the
  true value?").  A clean estimator accepts after a few dozen hits; a
  biased one — whose intervals sit beside the truth — rejects after a
  handful of misses.
* :class:`SequentialBiasGuard` — a reject-only anytime bound on the
  *self-normalized* running mean of raw errors ``estimate − truth``.
  Coverage alone can miss a small systematic bias hidden by wide
  intervals; the drift of the mean error cannot.  Self-normalization
  (the observed errors' own empirical spread, not the estimator's
  reported σ̂) matters: on heavy-tailed data a sample that misses the
  tail underestimates its own variance by orders of magnitude, so
  σ̂-standardized errors are heavy-tailed even for a perfectly
  unbiased estimator.  The boundary is union-bounded over all stopping
  times, so peeking every trial is sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BernoulliSPRT",
    "SequentialBiasGuard",
    "SequentialVerdict",
]


@dataclass(frozen=True)
class SequentialVerdict:
    """Outcome of a sequential test.

    ``decision`` is ``'accept'`` (evidence for the healthy hypothesis),
    ``'reject'`` (evidence for the broken one), or ``'undecided'``
    (the trial budget ran out first — treated as a pass by callers
    that bound trials, since rejection needs positive evidence).
    """

    decision: str
    n: int
    statistic: float

    @property
    def failed(self) -> bool:
        return self.decision == "reject"

    @property
    def stopped_early(self) -> bool:
        return self.decision in ("accept", "reject")


class BernoulliSPRT:
    """Wald SPRT on Bernoulli indicators.

    Tests H0 ``p >= p_pass`` (healthy) against H1 ``p <= p_fail``
    (broken) with type-I error ``alpha`` (rejecting a healthy
    estimator) and type-II error ``beta`` (accepting a broken one).
    Each observation adds ``log P(x | p_fail) − log P(x | p_pass)`` to
    the running statistic; crossing ``log((1−β)/α)`` rejects, crossing
    ``log(β/(1−α))`` accepts.  ``min_n`` observations are required
    before *accepting* — a lucky first hit must not end the test —
    while rejection is allowed at any time (each miss carries far more
    evidence than a hit when ``p_pass`` is near 1).

    The indifference region ``(p_fail, p_pass)`` is deliberately wide
    for fuzzing: normal-approximation intervals on skewed data
    under-cover somewhat at small sample sizes, and only collapsed
    coverage should fail a query.
    """

    def __init__(
        self,
        p_pass: float = 0.95,
        p_fail: float = 0.60,
        *,
        alpha: float = 1e-3,
        beta: float = 1e-3,
        min_n: int = 8,
    ) -> None:
        if not 0.0 < p_fail < p_pass < 1.0:
            raise ValueError(
                f"need 0 < p_fail < p_pass < 1, got {p_fail}, {p_pass}"
            )
        if not (0.0 < alpha < 0.5 and 0.0 < beta < 0.5):
            raise ValueError("alpha and beta must lie in (0, 0.5)")
        self.p_pass = p_pass
        self.p_fail = p_fail
        self.alpha = alpha
        self.beta = beta
        self.min_n = int(min_n)
        self._llr_hit = math.log(p_fail / p_pass)
        self._llr_miss = math.log((1.0 - p_fail) / (1.0 - p_pass))
        self._upper = math.log((1.0 - beta) / alpha)  # reject H0
        self._lower = math.log(beta / (1.0 - alpha))  # accept H0
        self.llr = 0.0
        self.n = 0
        self.hits = 0
        self._decision = "undecided"

    def observe(self, hit: bool) -> str:
        """Fold in one indicator; returns the current decision."""
        if self._decision != "undecided":
            return self._decision
        self.n += 1
        if hit:
            self.hits += 1
            self.llr += self._llr_hit
        else:
            self.llr += self._llr_miss
        if self.llr >= self._upper:
            self._decision = "reject"
        elif self.llr <= self._lower and self.n >= self.min_n:
            self._decision = "accept"
        return self._decision

    @property
    def decision(self) -> str:
        return self._decision

    def verdict(self) -> SequentialVerdict:
        return SequentialVerdict(self._decision, self.n, self.llr)


class SequentialBiasGuard:
    """Reject-only anytime test that raw errors drift away from zero.

    Feeds on ``e_i = estimate_i − truth`` and tracks the
    self-normalized statistic ``t_n = |ē| / (s_e / √n)`` — the running
    mean error over its own empirical standard error (Welford
    accumulation).  Under an unbiased estimator ``t_n`` is
    asymptotically standard normal at every ``n``; under a systematic
    bias it grows like ``√n``.  The test rejects when ``t_n`` exceeds a
    boundary union-bounded over all ``n`` (each ``n`` gets
    ``6 α / (π² n²)`` of the error budget, summing to ``α``), so
    continuous monitoring never inflates the false-positive rate much
    beyond ``alpha``; ``min_n`` keeps the normal approximation of the
    t-statistic out of its worst small-sample regime.  Errors with zero
    empirical spread yield **no** verdict: ``n`` identical observations
    cannot distinguish a deterministic bias from the probability-≈1
    atom of an under-resolved mixture (every draw at a 10⁻⁷ sampling
    rate is empty, so every estimate is 0 even though the estimator is
    unbiased), and deterministically wrong code paths are what the
    rate-1 oracle comparison exists to catch.

    It never accepts: "no drift yet" is an absence of evidence, which
    the caller's coverage SPRT (see :class:`BernoulliSPRT`) converts
    into affirmative acceptance.
    """

    def __init__(self, alpha: float = 1e-3, *, min_n: int = 10) -> None:
        if not 0.0 < alpha < 0.5:
            raise ValueError("alpha must lie in (0, 0.5)")
        self.alpha = alpha
        self.min_n = int(min_n)
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._decision = "undecided"

    def boundary(self, n: int | None = None) -> float:
        """The rejection boundary on ``t_n`` at step ``n``."""
        n = self.n if n is None else n
        if n < 1:
            return math.inf
        spend = 6.0 * self.alpha / (math.pi**2 * n * n)
        # Two-sided normal tail bound: P(|Z| > b) <= exp(-b²/2).
        return math.sqrt(2.0 * math.log(2.0 / spend))

    def statistic(self) -> float:
        """``t_n = |ē| / (s_e / √n)``; 0 when the spread is 0."""
        if self.n < 2:
            return 0.0
        variance = self._m2 / (self.n - 1)
        if variance == 0.0:
            return 0.0  # no spread observed: no verdict (see class doc)
        return abs(self._mean) / math.sqrt(variance / self.n)

    def observe(self, error: float) -> str:
        """Fold in one raw error ``estimate − truth``; returns decision."""
        if self._decision != "undecided":
            return self._decision
        if not math.isfinite(error):
            return self._decision  # non-informative trial
        self.n += 1
        delta = error - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (error - self._mean)
        if self.n >= self.min_n and self.statistic() > self.boundary():
            self._decision = "reject"
        return self._decision

    @property
    def decision(self) -> str:
        return self._decision

    def verdict(self) -> SequentialVerdict:
        return SequentialVerdict(self._decision, self.n, self.statistic())
