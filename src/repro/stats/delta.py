"""Delta-method estimation for AVERAGE (a ratio of SUM-like aggregates).

The paper's theory is exact for SUM-like aggregates; AVG = SUM/COUNT is
non-linear, and Section 9 points to the delta method.  First-order
expansion of ``g(s, c) = s/c`` around the means gives

    ``Var(S/C) ≈ Var(S)/µ_C² − 2·µ_S·Cov(S,C)/µ_C³ + µ_S²·Var(C)/µ_C⁴``

The covariance of two SUM-like estimators under the same GUS follows by
**polarization** from three variance estimates — all machinery that is
already exact and unbiased:

    ``Cov(X_f, X_g) = (Var(X_{f+g}) − Var(X_f) − Var(X_g)) / 2``
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.estimator import Estimate, estimate_sum
from repro.core.gus import GUSParams
from repro.errors import EstimationError


def covariance_estimate(
    params: GUSParams,
    f: np.ndarray,
    g: np.ndarray,
    lineage: Mapping[str, np.ndarray],
) -> float:
    """Unbiased estimate of ``Cov(X_f, X_g)`` by polarization.

    Unbiasedness is inherited: each of the three variance estimates is
    unbiased and expectation is linear.
    """
    var_sum = estimate_sum(params, np.asarray(f) + np.asarray(g), lineage)
    var_f = estimate_sum(params, f, lineage)
    var_g = estimate_sum(params, g, lineage)
    return 0.5 * (
        var_sum.variance_raw - var_f.variance_raw - var_g.variance_raw
    )


def ratio_estimate(
    numerator: Estimate,
    denominator: Estimate,
    covariance: float,
    *,
    label: str = "AVG",
) -> Estimate:
    """Delta-method estimate of ``numerator / denominator``."""
    if denominator.value == 0.0:
        raise EstimationError(
            "cannot form a ratio estimate: the denominator (COUNT) "
            "estimate is zero — the sample is empty"
        )
    mu_s, mu_c = numerator.value, denominator.value
    ratio = mu_s / mu_c
    var = (
        numerator.variance_raw / mu_c**2
        - 2.0 * mu_s * covariance / mu_c**3
        + mu_s**2 * denominator.variance_raw / mu_c**4
    )
    return Estimate(
        value=ratio,
        variance_raw=var,
        n_sample=numerator.n_sample,
        label=label,
        extras={
            "method": "delta",
            "numerator": numerator.value,
            "denominator": denominator.value,
            "covariance": covariance,
        },
    )
