"""Delta-method estimation for AVERAGE (a ratio of SUM-like aggregates).

The paper's theory is exact for SUM-like aggregates; AVG = SUM/COUNT is
non-linear, and Section 9 points to the delta method.  First-order
expansion of ``g(s, c) = s/c`` around the means gives

    ``Var(S/C) ≈ Var(S)/µ_C² − 2·µ_S·Cov(S,C)/µ_C³ + µ_S²·Var(C)/µ_C⁴``

The covariance of two SUM-like estimators under the same GUS follows by
**polarization** from three variance estimates — all machinery that is
already exact and unbiased:

    ``Cov(X_f, X_g) = (Var(X_{f+g}) − Var(X_f) − Var(X_g)) / 2``
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.estimator import (
    Estimate,
    GroupedEstimates,
    estimate_sum,
    estimate_sums_grouped,
)
from repro.core.gus import GUSParams
from repro.errors import EstimationError


def covariance_estimate(
    params: GUSParams,
    f: np.ndarray,
    g: np.ndarray,
    lineage: Mapping[str, np.ndarray],
) -> float:
    """Unbiased estimate of ``Cov(X_f, X_g)`` by polarization.

    Unbiasedness is inherited: each of the three variance estimates is
    unbiased and expectation is linear.
    """
    var_sum = estimate_sum(params, np.asarray(f) + np.asarray(g), lineage)
    var_f = estimate_sum(params, f, lineage)
    var_g = estimate_sum(params, g, lineage)
    return 0.5 * (
        var_sum.variance_raw - var_f.variance_raw - var_g.variance_raw
    )


def ratio_estimate(
    numerator: Estimate,
    denominator: Estimate,
    covariance: float,
    *,
    label: str = "AVG",
) -> Estimate:
    """Delta-method estimate of ``numerator / denominator``."""
    if denominator.value == 0.0:
        raise EstimationError(
            "cannot form a ratio estimate: the denominator (COUNT) "
            "estimate is zero — the sample is empty"
        )
    mu_s, mu_c = numerator.value, denominator.value
    ratio = mu_s / mu_c
    # Explicit products, not ** — libm pow and numpy's vectorized power
    # can differ in the last ulp, and the grouped twin of this formula
    # must agree bit-for-bit on exact-arithmetic inputs.
    mu_c2 = mu_c * mu_c
    var = (
        numerator.variance_raw / mu_c2
        - 2.0 * mu_s * covariance / (mu_c2 * mu_c)
        + mu_s * mu_s * denominator.variance_raw / (mu_c2 * mu_c2)
    )
    return Estimate(
        value=ratio,
        variance_raw=var,
        n_sample=numerator.n_sample,
        label=label,
        extras={
            "method": "delta",
            "numerator": numerator.value,
            "denominator": denominator.value,
            "covariance": covariance,
        },
    )


def grouped_covariance_estimate(
    params: GUSParams,
    f: np.ndarray,
    g: np.ndarray,
    lineage: Mapping[str, np.ndarray],
    gids: np.ndarray,
    n_groups: int,
    *,
    var_f: GroupedEstimates | None = None,
    var_g: GroupedEstimates | None = None,
) -> np.ndarray:
    """Per-group :func:`covariance_estimate`, one polarization pass.

    Group membership is data-defined, so the scalar argument applies
    group by group; the three variance vectors come out of the
    vectorized grouped estimator.  Callers that already hold the
    estimates for ``f`` and/or ``g`` (the AVG path always does) pass
    them via ``var_f``/``var_g`` so only the ``f+g`` moments are
    computed fresh.
    """
    f = np.asarray(f, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    var_sum = estimate_sums_grouped(params, f + g, lineage, gids, n_groups)
    if var_f is None:
        var_f = estimate_sums_grouped(params, f, lineage, gids, n_groups)
    if var_g is None:
        var_g = estimate_sums_grouped(params, g, lineage, gids, n_groups)
    return 0.5 * (
        var_sum.variance_raw - var_f.variance_raw - var_g.variance_raw
    )


def ratio_estimates_grouped(
    numerator: GroupedEstimates,
    denominator: GroupedEstimates,
    covariance: np.ndarray,
    *,
    label: str = "AVG",
) -> GroupedEstimates:
    """Delta-method per-group ratio, vectorized over groups.

    Every group present in the output was observed through at least one
    sample row, so its COUNT estimate is strictly positive; a zero
    denominator indicates the caller passed groups the sample never saw
    and is rejected rather than silently emitting infinities.
    """
    covariance = np.asarray(covariance, dtype=np.float64)
    mu_s, mu_c = numerator.values, denominator.values
    if np.any(mu_c == 0.0):
        raise EstimationError(
            "cannot form per-group ratio estimates: some denominator "
            "(COUNT) estimate is zero — those groups have no sample rows"
        )
    ratio = mu_s / mu_c
    mu_c2 = mu_c * mu_c
    var = (
        numerator.variance_raw / mu_c2
        - 2.0 * mu_s * covariance / (mu_c2 * mu_c)
        + mu_s * mu_s * denominator.variance_raw / (mu_c2 * mu_c2)
    )
    return GroupedEstimates(
        values=ratio,
        variance_raw=var,
        n_samples=numerator.n_samples,
        label=label,
        extras={"method": "delta"},
    )
