"""Numerically stable running moments (Welford's algorithm).

Used by the experiment harnesses to accumulate estimator trials and by
the load-shedding application to track stream statistics one batch at a
time.
"""

from __future__ import annotations

import math


class RunningMoments:
    """Single-pass mean/variance accumulator."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Include one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values) -> None:
        """Include many observations."""
        for value in values:
            self.add(float(value))

    @property
    def variance(self) -> float:
        """Population variance of the observations so far."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Bessel-corrected (n−1) variance."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance) if self.count else float("nan")

    def __repr__(self) -> str:
        return (
            f"RunningMoments(n={self.count}, mean={self.mean:.6g}, "
            f"var={self.variance:.6g})"
        )
