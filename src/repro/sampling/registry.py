"""The sampling-family registry: one discovery point for all consumers.

Historically the optimizer's candidate enumerator and the SQL fuzzer
each carried a hard-coded list of sampling families; adding a family
meant editing both (and silently missing one).  The registry inverts
that: families register here once, under a stable name, with

* a ``factory(rate, relation, size, seed)`` that instantiates the
  family at a target sampling fraction of one relation — the shape the
  optimizer's rate-ladder enumeration needs; and
* an optional ``sql_tag`` naming the family's SQL-expressible
  ``TABLESAMPLE`` form, which the fuzz generator draws its sample
  clauses from (families sharing a surface form — e.g. coordinated
  sampling *is* ``percent REPEATABLE`` at a shared seed — share a tag).

Built-in families are registered when :mod:`repro.sampling` is
imported.  Third-party methods plug in via :func:`register_family`; a
plain :class:`SamplingMethod` subclass whose constructor takes the rate
can be registered directly.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ReproError
from repro.sampling.base import SamplingMethod

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "FamilySpec",
    "family",
    "family_names",
    "make_family_method",
    "register_family",
    "relation_seed",
    "sql_sample_tags",
]

#: Rows per block for generated SYSTEM-style methods.
DEFAULT_BLOCK_ROWS = 64

Factory = Callable[[float, str, int, int], SamplingMethod]


def relation_seed(seed: int, relation: str) -> int:
    """A stable per-relation seed for hash-based (nested-draw) filters.

    Uses CRC32 rather than ``hash()`` so the seed survives process
    restarts (string hashing is salted per interpreter run).
    """
    return (seed * 0x9E3779B1 + zlib.crc32(relation.encode())) % (2**31)


@dataclass(frozen=True)
class FamilySpec:
    """One registered sampling family.

    ``enumerated`` controls whether the optimizer's candidate
    enumerator walks this family's rate ladder by default; ``sql_tag``
    (``"percent"``, ``"percent-repeatable"``, ``"rows"``, ``"system"``,
    or ``None``) names its ``TABLESAMPLE`` surface form for the fuzz
    generator.
    """

    name: str
    factory: Factory
    enumerated: bool = True
    sql_tag: str | None = None


_REGISTRY: dict[str, FamilySpec] = {}


def register_family(
    name: str,
    factory: Factory | type[SamplingMethod],
    *,
    enumerated: bool = True,
    sql_tag: str | None = None,
    replace: bool = False,
) -> FamilySpec:
    """Register a sampling family under ``name``.

    ``factory`` is either a ``(rate, relation, size, seed)`` callable
    or a :class:`SamplingMethod` subclass taking the rate alone.
    Registration order is preserved — it is the enumeration order every
    consumer sees — and duplicate names are refused unless ``replace``
    is set (re-registration keeps the original position).
    """
    if not replace and name in _REGISTRY:
        raise ReproError(
            f"sampling family {name!r} is already registered; pass "
            "replace=True to override it"
        )
    if isinstance(factory, type) and issubclass(factory, SamplingMethod):
        cls = factory

        def factory(rate, relation, size, seed, _cls=cls):  # noqa: ARG001
            return _cls(rate)

    spec = FamilySpec(
        name=name, factory=factory, enumerated=enumerated, sql_tag=sql_tag
    )
    _REGISTRY[name] = spec
    return spec


def family(name: str) -> FamilySpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown sampling family {name!r}; registered: "
            f"{list(_REGISTRY)}"
        ) from None


def family_names(*, enumerated_only: bool = False) -> tuple[str, ...]:
    """Registered family names, in registration order."""
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if spec.enumerated or not enumerated_only
    )


def make_family_method(
    name: str, rate: float, relation: str, size: int, seed: int
) -> SamplingMethod:
    """Instantiate a registered family at a target sampling fraction."""
    return family(name).factory(rate, relation, size, seed)


def sql_sample_tags() -> tuple[str, ...]:
    """The distinct SQL surface forms of registered families, in order."""
    seen: dict[str, None] = {}
    for spec in _REGISTRY.values():
        if spec.sql_tag is not None:
            seen.setdefault(spec.sql_tag)
    return tuple(seen)


def _register_builtins() -> None:
    from repro.sampling.bernoulli import Bernoulli
    from repro.sampling.block import BlockBernoulli
    from repro.sampling.coordinated import CoordinatedBernoulli
    from repro.sampling.pseudorandom import LineageHashBernoulli
    from repro.sampling.without_replacement import WithoutReplacement
    from repro.versions.snapshots import base_name

    register_family(
        "bernoulli",
        lambda rate, relation, size, seed: Bernoulli(rate),
        sql_tag="percent",
    )
    register_family(
        "lineage-hash",
        lambda rate, relation, size, seed: LineageHashBernoulli(
            rate, seed=relation_seed(seed, relation)
        ),
        sql_tag="percent-repeatable",
    )
    register_family(
        "block",
        lambda rate, relation, size, seed: BlockBernoulli(
            rate, DEFAULT_BLOCK_ROWS
        ),
        sql_tag="system",
    )
    register_family(
        "wor",
        # n ≥ 2 keeps b_∅ > 0, which the unbiasing recursion requires.
        lambda rate, relation, size, seed: WithoutReplacement(
            min(size, max(2, int(round(rate * size))))
        ),
        sql_tag="rows",
    )
    register_family(
        "coordinated",
        # Snapshots of one base table share a namespace, so candidates
        # for t, t@v1, t@v2 draw the same per-key decisions.
        lambda rate, relation, size, seed: CoordinatedBernoulli(
            rate, namespace=base_name(relation), salt=seed
        ),
        sql_tag="percent-repeatable",
    )


_register_builtins()
