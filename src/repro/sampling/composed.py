"""Multi-dimensional sampling operators built by composition (Prop 9).

Example 5 of the paper designs a *bi-dimensional Bernoulli*
``B(p_l, p_o)`` that filters a two-relation expression on both lineage
dimensions at once.  Composition is how Section 7 places a cheap
sub-sampler above a join: each dimension is an independent
lineage-keyed Bernoulli, and the combined GUS parameters follow from
``compose_gus``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping

import numpy as np

from repro.core.algebra import compose_gus
from repro.core.gus import GUSParams
from repro.errors import ReproError
from repro.sampling.pseudorandom import LineageHashBernoulli


def _relation_seed(seed: int, rel: str) -> int:
    """Process-stable per-relation seed derived from the master seed."""
    digest = hashlib.blake2b(f"{seed}\x00{rel}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") & (2**63 - 1)


class BiDimensionalBernoulli:
    """Independent lineage-keyed Bernoulli filters, one per relation.

    ``rates`` maps base-relation names to keep probabilities.  The
    filter keeps a result row iff *every* dimension keeps the row's
    lineage id for that relation — which is precisely the intersection
    of per-relation GUS filters, so the combined parameters are the
    composition (Proposition 9) of the per-dimension Bernoullis.
    """

    __slots__ = ("filters",)

    def __init__(self, rates: Mapping[str, float], seed: int) -> None:
        if not rates:
            raise ReproError("need at least one sampling dimension")
        # Derive one independent seed per relation from the master seed.
        # Python's builtin hash() is salted per process (PYTHONHASHSEED),
        # which would make the same (seed, relation) pair draw different
        # samples in different processes — the derivation must be a
        # stable content hash so REPEATABLE means repeatable everywhere.
        self.filters = {
            rel: LineageHashBernoulli(p, seed=_relation_seed(seed, rel))
            for rel, p in sorted(rates.items())
        }

    @property
    def rates(self) -> dict[str, float]:
        return {rel: f.p for rel, f in self.filters.items()}

    def keep(self, lineage: Mapping[str, np.ndarray]) -> np.ndarray:
        """Keep-mask for rows given their lineage columns."""
        mask: np.ndarray | None = None
        for rel, filt in self.filters.items():
            if rel not in lineage:
                raise ReproError(
                    f"lineage column {rel!r} missing; have {sorted(lineage)}"
                )
            dim_mask = filt.keep(lineage[rel])
            mask = dim_mask if mask is None else mask & dim_mask
        assert mask is not None
        return mask

    def gus(self) -> GUSParams:
        """Combined GUS over all dimensions (repeated Proposition 9)."""
        params: GUSParams | None = None
        for rel, filt in self.filters.items():
            dim = filt.gus(rel, 0)
            params = dim if params is None else compose_gus(params, dim)
        assert params is not None
        return params

    def describe(self) -> str:
        inner = ", ".join(
            f"{rel}={f.p:g}" for rel, f in self.filters.items()
        )
        return f"BI-BERNOULLI({inner})"

    def __repr__(self) -> str:
        return f"BiDimensionalBernoulli({self.describe()})"
