"""Sampling operators: the executable side of ``TABLESAMPLE``.

Each method implements two duties:

* **execution** — draw a boolean keep-mask over a base table (plus the
  lineage ids the draw is keyed on, which is what makes block sampling
  analysable), and
* **analysis** — report its GUS parameters ``G(a, b̄)`` so the rewriter
  can fold it into the plan's single top quasi-operator.

With-replacement sampling is provided for the online-aggregation-style
baseline but deliberately refuses GUS conversion: it is not a filter
(paper, Section 9).
"""

from repro.sampling.base import SamplingMethod
from repro.sampling.bernoulli import Bernoulli
from repro.sampling.block import BlockBernoulli, BlockWithoutReplacement
from repro.sampling.composed import BiDimensionalBernoulli
from repro.sampling.coordinated import CoordinatedBernoulli, coordination_seed
from repro.sampling.pseudorandom import LineageHashBernoulli, hash01
from repro.sampling.registry import (
    FamilySpec,
    family,
    family_names,
    make_family_method,
    register_family,
    relation_seed,
    sql_sample_tags,
)
from repro.sampling.with_replacement import WithReplacement
from repro.sampling.without_replacement import WithoutReplacement

__all__ = [
    "SamplingMethod",
    "Bernoulli",
    "WithoutReplacement",
    "WithReplacement",
    "BlockBernoulli",
    "BlockWithoutReplacement",
    "CoordinatedBernoulli",
    "LineageHashBernoulli",
    "BiDimensionalBernoulli",
    "FamilySpec",
    "coordination_seed",
    "family",
    "family_names",
    "hash01",
    "make_family_method",
    "register_family",
    "relation_seed",
    "sql_sample_tags",
]
