"""Fixed-size sampling *with* replacement.

This exists for the online-aggregation-style baseline
(:mod:`repro.baselines.split_sample`).  It is **not** a GUS method:
drawing with replacement produces duplicate tuples, so the process is
not a randomized filter, and the paper (Section 9) explicitly leaves it
outside the algebra.  ``gus()`` therefore raises
:class:`~repro.errors.NotGUSError`, which is exactly the error a user
sees if they try to push such a sample through the SBox.
"""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams
from repro.errors import NotGUSError, ReproError
from repro.sampling.base import Draw, SamplingMethod


class WithReplacement(SamplingMethod):
    """Draw ``size`` tuples uniformly with replacement."""

    __slots__ = ("size",)

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ReproError(f"sample size {size} must be non-negative")
        self.size = int(size)

    def draw_indices(self, n_rows: int, rng: np.random.Generator) -> np.ndarray:
        """Row indices of the draw, duplicates included."""
        if n_rows == 0 or self.size == 0:
            return np.empty(0, dtype=np.int64)
        return rng.integers(0, n_rows, size=self.size, dtype=np.int64)

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        raise NotGUSError(
            "with-replacement sampling produces duplicates and cannot run "
            "as a filter; use draw_indices() (baselines) or a without-"
            "replacement method"
        )

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        raise NotGUSError(
            "with-replacement sampling is not a randomized filter and has "
            "no GUS representation (paper, Section 9)"
        )

    def describe(self) -> str:
        return f"WR({self.size} ROWS)"
