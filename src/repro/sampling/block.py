"""Block (page-level, ``SYSTEM``-style) sampling.

SQL's ``TABLESAMPLE SYSTEM`` is vendor-defined but almost always means
"keep whole pages".  At tuple granularity this is *not* uniform-pair
sampling (two tuples on one page live or die together), but it **is**
GUS once lineage is tracked at block granularity — the "block-based
variants" the paper's Section 1 claims GUS subsumes.  These methods
therefore report *block ids* as their lineage unit, and their GUS
parameters are the Figure 1 formulas evaluated over blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams, bernoulli_gus, without_replacement_gus
from repro.errors import ReproError
from repro.sampling.base import Draw, SamplingMethod


def _block_ids(n_rows: int, rows_per_block: int) -> np.ndarray:
    return np.arange(n_rows, dtype=np.int64) // rows_per_block


def _n_blocks(n_rows: int, rows_per_block: int) -> int:
    return -(-n_rows // rows_per_block) if n_rows else 0


class BlockBernoulli(SamplingMethod):
    """Keep each block of ``rows_per_block`` consecutive rows with
    probability ``p`` (SYSTEM-style Bernoulli)."""

    __slots__ = ("p", "rows_per_block")

    def __init__(self, p: float, rows_per_block: int) -> None:
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"block rate {p} is not a probability")
        if rows_per_block <= 0:
            raise ReproError("rows_per_block must be positive")
        self.p = float(p)
        self.rows_per_block = int(rows_per_block)

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        blocks = _block_ids(n_rows, self.rows_per_block)
        keep_block = rng.random(_n_blocks(n_rows, self.rows_per_block)) < self.p
        mask = keep_block[blocks] if n_rows else np.zeros(0, dtype=bool)
        return Draw(mask=mask, lineage=blocks)

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        # Over block lineage this is plain Bernoulli: same-block pairs
        # survive with probability p, cross-block pairs with p².
        return bernoulli_gus(relation, self.p)

    def describe(self) -> str:
        return (
            f"SYSTEM({self.p * 100:g} PERCENT, "
            f"BLOCK {self.rows_per_block})"
        )


class BlockWithoutReplacement(SamplingMethod):
    """Keep exactly ``n_blocks`` randomly chosen blocks."""

    __slots__ = ("n_blocks", "rows_per_block")

    def __init__(self, n_blocks: int, rows_per_block: int) -> None:
        if n_blocks < 0:
            raise ReproError("n_blocks must be non-negative")
        if rows_per_block <= 0:
            raise ReproError("rows_per_block must be positive")
        self.n_blocks = int(n_blocks)
        self.rows_per_block = int(rows_per_block)

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        blocks = _block_ids(n_rows, self.rows_per_block)
        total = _n_blocks(n_rows, self.rows_per_block)
        keep = min(self.n_blocks, total)
        keep_block = np.zeros(total, dtype=bool)
        if keep:
            keep_block[rng.choice(total, size=keep, replace=False)] = True
        mask = keep_block[blocks] if n_rows else np.zeros(0, dtype=bool)
        return Draw(mask=mask, lineage=blocks)

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        total = _n_blocks(n_rows, self.rows_per_block)
        return without_replacement_gus(
            relation, min(self.n_blocks, total), max(total, 1)
        )

    def describe(self) -> str:
        return (
            f"SYSTEM({self.n_blocks} BLOCKS OF {self.rows_per_block})"
        )
