"""Fixed-size simple random sampling without replacement
(``TABLESAMPLE (n ROWS)``)."""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams, identity_gus, without_replacement_gus
from repro.errors import ReproError
from repro.sampling.base import Draw, SamplingMethod, row_lineage


class WithoutReplacement(SamplingMethod):
    """Keep a uniform random subset of exactly ``size`` tuples.

    GUS parameters (paper Figure 1): ``a = n/N``,
    ``b_∅ = n(n−1)/(N(N−1))``, ``b_R = n/N``.  When the table is smaller
    than ``size`` the whole table is kept (``a = 1``), matching SQL
    semantics.
    """

    __slots__ = ("size",)

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ReproError(f"sample size {size} must be non-negative")
        self.size = int(size)

    def effective_size(self, n_rows: int) -> int:
        return min(self.size, n_rows)

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        keep = self.effective_size(n_rows)
        mask = np.zeros(n_rows, dtype=bool)
        if keep:
            chosen = rng.choice(n_rows, size=keep, replace=False)
            mask[chosen] = True
        return Draw(mask=mask, lineage=row_lineage(n_rows))

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        if n_rows == 0:
            # The "table smaller than size → keep the whole table"
            # branch, taken vacuously: every (zero) tuple survives with
            # certainty, so this is identity sampling of an empty
            # relation, not the undefined 0/0 WOR ratio.
            return identity_gus([relation])
        return without_replacement_gus(
            relation, self.effective_size(n_rows), n_rows
        )

    def describe(self) -> str:
        return f"WOR({self.size} ROWS)"
