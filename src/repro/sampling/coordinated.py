"""Coordinated Bernoulli sampling across table versions.

Cohen & Kaplan's coordinated (monotone) sampling assigns every *key* a
single persistent uniform draw ``u(k)`` and keeps the key at rate ``p``
iff ``u(k) < p``.  Two samples that share the draws are then maximally
overlapping: at equal rates they keep exactly the same keys, and a
higher-rate sample is a strict superset of a lower-rate one (nesting).
Over table snapshots this is the whole trick behind cheap change
aggregates — rows present unchanged in both versions land in both
samples or in neither, so their contribution to a difference estimate
cancels *exactly*, and only genuinely changed rows contribute variance.

:class:`CoordinatedBernoulli` realizes the shared draw as the same
SplitMix64 lineage-id hash :class:`LineageHashBernoulli` uses, but with
the seed derived (blake2b) from a *coordination namespace* — normally
the base-table name — rather than chosen per relation.  Snapshots of
one base table therefore share draws no matter which catalog name
(``t``, ``t@v1``, ``t@v2``) they are scanned under, while different
base tables stay independent.  Because each single sample is still an
ordinary lineage-keyed Bernoulli(p) filter, the GUS parameters are
plain ``bernoulli_gus`` and every algebra rule (join, compose, union,
compaction, lifting) applies unchanged.
"""

from __future__ import annotations

from hashlib import blake2b

from repro.errors import ReproError
from repro.sampling.pseudorandom import LineageHashBernoulli

__all__ = ["CoordinatedBernoulli", "coordination_seed"]


def coordination_seed(namespace: str, salt: int = 0) -> int:
    """The shared hash seed of a coordination namespace.

    A pure function of ``(namespace, salt)`` — every party that agrees
    on the namespace (typically the base-table name) derives the same
    per-key draws, which is what makes samples of different snapshots
    coordinated without any shared state.
    """
    digest = blake2b(
        f"{int(salt)}:{namespace}".encode(), digest_size=8
    ).digest()
    # Keep within int64 so the SplitMix64 kernel sees a plain seed.
    return int.from_bytes(digest, "little") >> 1


class CoordinatedBernoulli(LineageHashBernoulli):
    """Bernoulli(p) with draws shared across a coordination namespace.

    Same key and rate ⇒ identical keep decision in every table of the
    namespace; a higher rate keeps a superset of a lower rate's keys.
    Everything else — execution, GUS analysis, catalog fingerprinting,
    chunked determinism — is inherited from the lineage-hash family.
    """

    __slots__ = ("namespace", "salt")

    def __init__(self, p: float, namespace: str, salt: int = 0) -> None:
        if not namespace:
            raise ReproError("coordinated sampling needs a namespace")
        super().__init__(p, coordination_seed(namespace, salt))
        self.namespace = str(namespace)
        self.salt = int(salt)

    def at_rate(self, p: float) -> "CoordinatedBernoulli":
        """The same coordinated draws at a different rate (nesting)."""
        return CoordinatedBernoulli(p, self.namespace, self.salt)

    def describe(self) -> str:
        return (
            f"COORDINATED({self.p * 100:g} PERCENT, "
            f"namespace={self.namespace!r}, salt={self.salt})"
        )
