"""Lineage-keyed pseudo-random Bernoulli filtering (paper Section 7).

Sub-sampling a *derived* table must behave like a GUS on the base
relations: if the filter drops a base tuple, it must drop it from every
result row it contributed to.  The paper's recipe is a pseudo-random
function of (per-relation seed, lineage id) — the same id always maps to
the same uniform number, so the keep/drop decision is consistent across
result rows while requiring only one stored seed per relation.

The hash is a SplitMix64 finalizer: cheap, stateless, and with output
uniform enough for sampling purposes (verified statistically in the
test suite).
"""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams, bernoulli_gus
from repro.errors import ReproError
from repro.sampling.base import Draw, SamplingMethod, row_lineage

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_INV_2_64 = 1.0 / float(2**64)


def _finalize(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: two xor-shift-multiply rounds."""
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def hash01(seed: int, ids: np.ndarray) -> np.ndarray:
    """Map ``(seed, id)`` pairs to deterministic uniforms in ``[0, 1)``.

    The seed is finalized *before* being combined with the id stream:
    a plain additive combination would make ``hash01(s, i)`` a function
    of ``s + i`` only, perfectly correlating filters with nearby seeds
    at shifted ids — a real bias source for multi-stream sampling.
    """
    with np.errstate(over="ignore"):
        seed_mix = _finalize(
            np.uint64(seed % (2**64)) * _GAMMA + _GAMMA
        )
        z = seed_mix ^ (np.asarray(ids, dtype=np.uint64) * _GAMMA)
        z = _finalize(z)
    return z.astype(np.float64) * _INV_2_64


class LineageHashBernoulli(SamplingMethod):
    """Bernoulli(p) keyed on lineage ids rather than an RNG stream.

    Because the decision is a pure function of the lineage id, applying
    the same filter to any derived table is consistent with applying it
    to the base relation — precisely the GUS property Section 7 needs.
    """

    __slots__ = ("p", "seed")

    def __init__(self, p: float, seed: int) -> None:
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"rate {p} is not a probability")
        self.p = float(p)
        self.seed = int(seed)

    def keep(self, ids: np.ndarray) -> np.ndarray:
        """The deterministic keep-mask for arbitrary lineage ids."""
        return hash01(self.seed, ids) < self.p

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        lineage = row_lineage(n_rows)
        return Draw(mask=self.keep(lineage), lineage=lineage)

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        return bernoulli_gus(relation, self.p)

    def describe(self) -> str:
        return f"HASH-BERNOULLI({self.p * 100:g} PERCENT, seed={self.seed})"
