"""Lineage-keyed pseudo-random Bernoulli filtering (paper Section 7).

Sub-sampling a *derived* table must behave like a GUS on the base
relations: if the filter drops a base tuple, it must drop it from every
result row it contributed to.  The paper's recipe is a pseudo-random
function of (per-relation seed, lineage id) — the same id always maps to
the same uniform number, so the keep/drop decision is consistent across
result rows while requiring only one stored seed per relation.

The hash is a SplitMix64 finalizer: cheap, stateless, and with output
uniform enough for sampling purposes (verified statistically in the
test suite).  The kernel itself lives in :mod:`repro.core.kernels`
(vectorized numpy, optional bit-identical JIT under ``REPRO_JIT=1``);
this module re-exports it under its historical name.
"""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams, bernoulli_gus
from repro.core.kernels import _finalize, hash01
from repro.errors import ReproError
from repro.sampling.base import Draw, SamplingMethod, row_lineage

__all__ = ["hash01", "_finalize", "LineageHashBernoulli"]


class LineageHashBernoulli(SamplingMethod):
    """Bernoulli(p) keyed on lineage ids rather than an RNG stream.

    Because the decision is a pure function of the lineage id, applying
    the same filter to any derived table is consistent with applying it
    to the base relation — precisely the GUS property Section 7 needs.
    """

    __slots__ = ("p", "seed")

    def __init__(self, p: float, seed: int) -> None:
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"rate {p} is not a probability")
        self.p = float(p)
        self.seed = int(seed)

    def keep(self, ids: np.ndarray) -> np.ndarray:
        """The deterministic keep-mask for arbitrary lineage ids."""
        return hash01(self.seed, ids) < self.p

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        lineage = row_lineage(n_rows)
        return Draw(mask=self.keep(lineage), lineage=lineage)

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        return bernoulli_gus(relation, self.p)

    def describe(self) -> str:
        return f"HASH-BERNOULLI({self.p * 100:g} PERCENT, seed={self.seed})"
