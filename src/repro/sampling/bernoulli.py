"""Bernoulli (a.k.a. ``TABLESAMPLE (p PERCENT)``) sampling."""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams, bernoulli_gus
from repro.errors import ReproError
from repro.sampling.base import Draw, SamplingMethod, row_lineage


class Bernoulli(SamplingMethod):
    """Keep each tuple independently with probability ``p``.

    GUS parameters (paper Figure 1): ``a = p``, ``b_∅ = p²``,
    ``b_R = p``.
    """

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"Bernoulli rate {p} is not a probability")
        self.p = float(p)

    @classmethod
    def from_percent(cls, percent: float) -> "Bernoulli":
        """Build from the SQL ``PERCENT`` spelling (0–100)."""
        return cls(percent / 100.0)

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        mask = rng.random(n_rows) < self.p
        return Draw(mask=mask, lineage=row_lineage(n_rows))

    def gus(self, relation: str, n_rows: int) -> GUSParams:
        return bernoulli_gus(relation, self.p)

    def describe(self) -> str:
        return f"BERNOULLI({self.p * 100:g} PERCENT)"
