"""The sampling-method interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.gus import GUSParams


@dataclass(frozen=True)
class Draw:
    """Outcome of executing a sampling method over a base table.

    ``mask`` marks the kept rows.  ``lineage`` gives the lineage id of
    *every* row (kept or not) under this method's sampling unit — row
    ids for tuple-level methods, block ids for block-level ones.  The
    executor attaches ``lineage[mask]`` to the surviving rows.
    """

    mask: np.ndarray
    lineage: np.ndarray


class SamplingMethod(abc.ABC):
    """A randomized filter over one base relation.

    Subclasses must be deterministic functions of the supplied
    ``numpy.random.Generator`` so experiments are reproducible.
    """

    @abc.abstractmethod
    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        """Sample a keep-mask (and lineage ids) for a table of ``n_rows``."""

    @abc.abstractmethod
    def gus(self, relation: str, n_rows: int) -> GUSParams:
        """GUS parameters of this method applied to ``relation``.

        Raises :class:`~repro.errors.NotGUSError` for methods that are
        not uniform filters.
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable form, e.g. ``BERNOULLI(10 PERCENT)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


def row_lineage(n_rows: int) -> np.ndarray:
    """Default tuple-level lineage: the row index."""
    return np.arange(n_rows, dtype=np.int64)
