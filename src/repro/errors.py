"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or type constraint was violated."""


class PlanError(ReproError):
    """A query plan is malformed or cannot be analysed."""


class SelfJoinError(PlanError):
    """Two join inputs share lineage (Proposition 6 precondition).

    The GUS join rule requires ``L(R1) ∩ L(R2) = ∅``; self-joins create
    dependencies that first- and second-order inclusion probabilities
    cannot capture (paper, Section 9).
    """


class NotGUSError(ReproError):
    """A sampling method cannot be expressed as a GUS quasi-operator.

    Raised, e.g., for with-replacement sampling, which produces
    duplicates and therefore is not a randomized *filter*.
    """


class LatticeError(ReproError):
    """A subset-lattice operation received inconsistent dimensions."""


class EstimationError(ReproError):
    """The estimator was given inputs it cannot analyse."""


class ExecutionError(ReproError):
    """A plan could not be executed (e.g. a bare GUS quasi-operator)."""


class SQLError(ReproError):
    """SQL text could not be lexed, parsed, or planned."""


class StorageError(ReproError):
    """The on-disk columnar layout is missing, torn, or inconsistent.

    Raised when a column file's size disagrees with the footer, the
    footer itself is absent or unparsable, or a dtype in the footer is
    not one the reader supports.  A torn write must fail loud here
    rather than surface later as silently-wrong numbers.
    """


class ServeError(ReproError):
    """A failure in the network serving tier."""


class ProtocolError(ServeError):
    """A client frame could not be decoded or validated.

    Carries a machine-readable ``code`` so the wire error response can
    tell malformed JSON from a well-formed but invalid request.
    """

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


class AdmissionRejected(ServeError):
    """The admission queue is full; the request was shed outright."""


class QueryCancelled(ServeError):
    """The client went away; the in-flight ladder was abandoned."""


class DeadlineExceeded(ServeError):
    """The per-request deadline passed before the budget was met."""


class SQLSyntaxError(SQLError):
    """The SQL text violates the grammar.

    Carries the offending position so callers can point at the token.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(message + suffix)
        self.position = position
