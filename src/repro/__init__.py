"""repro — A Sampling Algebra for Aggregate Estimation (VLDB 2013).

A full reproduction of Nirkhiwale, Dobra and Jermaine's GUS sampling
algebra: a relational engine with lineage, TABLESAMPLE operators, the
GUS quasi-operator algebra with SOA-equivalent plan rewriting, the SBox
estimator with normal/Chebyshev confidence intervals, the Section 7
sub-sampled variance estimator, baselines, and the Section 8
applications.

Quickstart::

    from repro import Database
    from repro.data import generate_tpch

    db = Database.from_tables(generate_tpch(scale=0.01, seed=7))
    result = db.sql(
        "SELECT SUM(l_discount * (1.0 - l_tax)) AS revenue "
        "FROM lineitem TABLESAMPLE (10 PERCENT), "
        "     orders TABLESAMPLE (1000 ROWS) "
        "WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0"
    )
    est = result.estimates["revenue"]
    print(est.value, est.ci(0.95))
"""

from repro.core import (
    ConfidenceInterval,
    Estimate,
    GUSParams,
    bernoulli_gus,
    compact_gus,
    compose_gus,
    estimate_sum,
    identity_gus,
    join_gus,
    lift_gus,
    null_gus,
    union_gus,
    without_replacement_gus,
)
from repro.errors import (
    EstimationError,
    NotGUSError,
    PlanError,
    ReproError,
    SchemaError,
    SelfJoinError,
    SQLError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GUSParams",
    "Estimate",
    "ConfidenceInterval",
    "bernoulli_gus",
    "without_replacement_gus",
    "identity_gus",
    "null_gus",
    "join_gus",
    "compose_gus",
    "union_gus",
    "compact_gus",
    "lift_gus",
    "estimate_sum",
    "ReproError",
    "SchemaError",
    "PlanError",
    "SelfJoinError",
    "NotGUSError",
    "EstimationError",
    "SQLError",
    "Database",
    "Table",
]


def __getattr__(name: str):
    # Deferred imports keep `import repro` light and avoid import cycles
    # while the heavier relational/SQL layers load on first use.
    if name == "Database":
        from repro.relational.database import Database

        return Database
    if name == "Table":
        from repro.relational.table import Table

        return Table
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
