"""``python -m repro`` — the interactive shell."""

import sys

from repro.cli import main

sys.exit(main())
