"""Theorem 1: unbiased SUM estimation and exact variance under GUS.

Given a GUS sample ``R`` of an expression ``R`` drawn by ``G(a, b̄)``,
the estimator of ``A = Σ_{t∈R} f(t)`` is ``X = (1/a) Σ_{t∈R} f(t)``
with ``E[X] = A`` and

    ``σ²(X) = Σ_{S⊆L} (c_S / a²) · y_S  −  y_∅``

where ``c = µ(b)`` is the Möbius transform of the second-order
inclusion probabilities (a *sampling* property) and

    ``y_S = Σ_{lineage-groups g on S} ( Σ_{t∈g} f(t) )²``

is a *data* property: group the full relation by the lineage attributes
of the base relations in ``S``, sum ``f`` within each group, and add up
the squares (``y_∅ = A²``; ``y_L = Σ f(t)²`` when lineage is unique).

Because the full data is normally unavailable, the same moments are
computed on the sample (``Y_S``) and then unbiased by the triangular
recursion of Section 6.3:

    ``Ŷ_S = ( Y_S − Σ_{∅≠T⊆Sᶜ} κ_{S,T} · Ŷ_{S∪T} ) / b_S``

solved from ``S = L`` downward, after which
``σ̂² = Σ_S (c_S/a²)·Ŷ_S − Ŷ_∅``.

All of this is exact, non-asymptotic, and verified in the test suite by
brute-force enumeration of entire sampling distributions.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core import confidence
from repro.core.gus import GUSParams
from repro.core.lattice import (
    SubsetLattice,
    iter_submasks,
    kappa,
    popcount,
)
from repro.errors import EstimationError

__all__ = [
    "group_ids",
    "group_reduce",
    "y_terms",
    "y_terms_from_groups",
    "theorem1_variance",
    "exact_moments",
    "unbiased_y_terms",
    "estimate_from_moments",
    "estimate_sum",
    "Estimate",
]


def _sorted_boundaries(
    columns: Sequence[np.ndarray], n_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Lexsort ``columns`` and mark where a new key starts.

    Returns ``(order, boundary)``: ``order`` sorts the rows by key and
    ``boundary[i]`` is True when sorted row ``i`` opens a new group.
    The single sort here is the workhorse behind both :func:`group_ids`
    and :func:`group_reduce`.
    """
    order = np.lexsort(tuple(columns))
    boundary = np.zeros(n_rows, dtype=bool)
    boundary[0] = True
    for col in columns:
        sorted_col = col[order]
        boundary[1:] |= sorted_col[1:] != sorted_col[:-1]
    return order, boundary


def group_ids(columns: Sequence[np.ndarray], n_rows: int) -> tuple[np.ndarray, int]:
    """Assign a dense group id to each row, grouping by ``columns``.

    With no columns every row falls in one group (the ``S = ∅`` case).
    Uses lexsort + boundary detection, O(n log n) with no hashing.
    """
    if n_rows == 0:
        return np.empty(0, dtype=np.int64), 0
    if not columns:
        return np.zeros(n_rows, dtype=np.int64), 1
    order, boundary = _sorted_boundaries(columns, n_rows)
    gids_sorted = np.cumsum(boundary) - 1
    gids = np.empty(n_rows, dtype=np.int64)
    gids[order] = gids_sorted
    return gids, int(gids_sorted[-1]) + 1


def group_reduce(
    columns: Sequence[np.ndarray], weights: np.ndarray
) -> tuple[list[np.ndarray], np.ndarray]:
    """Compact rows to their distinct keys, summing ``weights`` per key.

    Returns ``(key_columns, sums)``: one array per input column holding
    each distinct key combination once (in sorted key order), and the
    total weight that fell on it.  This is the accumulator core shared
    by the batch :func:`y_terms` and the streaming
    :class:`repro.stream.MomentSketch`: a group-sum table is additive,
    so two tables (from two batches, shards, or sketches) merge exactly
    by concatenating and reducing again.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n_rows = weights.shape[0]
    if n_rows == 0:
        return [np.empty(0, dtype=c.dtype) for c in columns], np.empty(0)
    if not columns:
        return [], np.array([float(np.sum(weights))])
    order, boundary = _sorted_boundaries(columns, n_rows)
    gids_sorted = np.cumsum(boundary) - 1
    n_groups = int(gids_sorted[-1]) + 1
    firsts = order[boundary]
    keys = [np.asarray(col)[firsts] for col in columns]
    sums = np.bincount(gids_sorted, weights=weights[order], minlength=n_groups)
    return keys, sums


def y_terms_from_groups(
    group_sums: np.ndarray,
    key_columns: Sequence[np.ndarray],
    lattice: SubsetLattice,
) -> np.ndarray:
    """``y_S`` for every ``S``, from a compacted full-lineage group table.

    ``key_columns`` holds one distinct full-lineage key per row (column
    ``i`` is ``lattice.dims[i]``) and ``group_sums`` the per-group sum
    of ``f``.  Because a lineage group on ``S ⊂ L`` is a union of
    full-lineage groups, grouping the *compacted* table on the ``S``
    columns gives the same sums as grouping the raw rows — so each
    per-mask lexsort runs over ``#groups`` rows, not ``#rows``, and the
    full-lineage sort was paid exactly once.
    """
    group_sums = np.asarray(group_sums, dtype=np.float64)
    if len(key_columns) != lattice.n:
        raise EstimationError(
            f"{len(key_columns)} key columns for a lattice of {lattice.n} dims"
        )
    n_groups = group_sums.shape[0]
    out = np.zeros(lattice.size, dtype=np.float64)
    if n_groups == 0:
        return out
    total = float(np.sum(group_sums))
    for mask in lattice.masks():
        if mask == 0:
            out[0] = total * total
        elif mask == lattice.full_mask:
            out[mask] = float(np.dot(group_sums, group_sums))
        else:
            cols = [key_columns[i] for i in range(lattice.n) if mask >> i & 1]
            gids, n_sub = group_ids(cols, n_groups)
            sums = np.bincount(gids, weights=group_sums, minlength=n_sub)
            out[mask] = float(np.dot(sums, sums))
    return out


def y_terms(
    f: np.ndarray,
    lineage: Mapping[str, np.ndarray],
    lattice: SubsetLattice,
) -> np.ndarray:
    """Compute ``y_S`` for every ``S`` in the lattice.

    ``f`` holds the aggregated expression per row; ``lineage`` maps each
    base-relation name in the lattice to its int64 lineage column.
    Applied to the full data this yields the exact data moments; applied
    to a sample it yields the plug-in ``Y_S``.

    Thin batch wrapper over the accumulator core: one
    :func:`group_reduce` pass compacts the rows on the full lineage, and
    :func:`y_terms_from_groups` derives every submask moment from the
    compacted table.
    """
    f = np.asarray(f, dtype=np.float64)
    missing = [d for d in lattice.dims if d not in lineage]
    if missing:
        raise EstimationError(f"lineage columns missing for {missing}")
    cols = [np.asarray(lineage[d]) for d in lattice.dims]
    keys, sums = group_reduce(cols, f)
    return y_terms_from_groups(sums, keys, lattice)


def theorem1_variance(params: GUSParams, y: np.ndarray) -> float:
    """``σ²(X) = Σ_S (c_S/a²)·y_S − y_∅`` for given data moments."""
    if params.a <= 0.0:
        raise EstimationError("variance undefined for a = 0 (null sampling)")
    c = params.c_vector()
    return float(np.dot(c, y) / (params.a * params.a) - y[0])


def exact_moments(
    params: GUSParams,
    f: np.ndarray,
    lineage: Mapping[str, np.ndarray],
) -> tuple[float, float]:
    """Exact ``(E[X], σ²(X))`` computed from the *full* data.

    Used by the test oracles, the SOA checker, and the Section 8
    robustness application (where the "sample" is the database itself).
    """
    pruned = params.project_out_inactive()
    y = y_terms(f, lineage, pruned.lattice)
    total = float(np.sum(np.asarray(f, dtype=np.float64)))
    return total, theorem1_variance(pruned, y)


def unbiased_y_terms(params: GUSParams, plugin_y: np.ndarray) -> np.ndarray:
    """Solve the triangular system for unbiased ``Ŷ_S``.

    ``E[Y_S] = Σ_{T⊆Sᶜ} κ_{S,T} · y_{S∪T}`` with ``κ_{S,∅} = b_S``; the
    system is triangular in ``|S|`` and solved from the full set down.
    Requires every ``b_S > 0`` (a GUS that can never retain a pair with
    agreement pattern ``S`` carries no information about ``y_S``).
    """
    b = params.b
    if np.any(b <= 0.0):
        bad = [
            sorted(params.lattice.set_of(m))
            for m in params.lattice.masks()
            if b[m] <= 0.0
        ]
        raise EstimationError(
            f"cannot unbias y-terms: b_T = 0 for T in {bad}; the sampling "
            "process never observes such pairs"
        )
    full = params.lattice.full_mask
    yhat = np.zeros(params.lattice.size, dtype=np.float64)
    for mask in params.lattice.masks_by_descending_size():
        comp = full ^ mask
        acc = float(plugin_y[mask])
        for t_mask in iter_submasks(comp):
            if t_mask == 0:
                continue
            acc -= kappa(b, mask, t_mask) * yhat[mask | t_mask]
        yhat[mask] = acc / float(b[mask])
    return yhat


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its estimated sampling variance.

    ``variance_raw`` keeps the signed value produced by the unbiased
    estimator (which can dip below zero on very small samples);
    ``variance`` clamps at zero, and ``clamped`` records whether the
    clamp fired so callers can report honestly.
    """

    value: float
    variance_raw: float
    n_sample: int
    label: str = "SUM"
    extras: dict = field(default_factory=dict, repr=False)

    @property
    def clamped(self) -> bool:
        return self.variance_raw < 0.0

    @property
    def variance(self) -> float:
        return max(self.variance_raw, 0.0)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def ci(
        self, level: float = 0.95, method: str = "normal"
    ) -> confidence.ConfidenceInterval:
        """Two-sided confidence interval (``normal`` or ``chebyshev``)."""
        return confidence.interval(self.value, self.std, level, method)

    def quantile(self, q: float, method: str = "normal") -> float:
        """One-sided ``q``-quantile — the ``QUANTILE(agg, q)`` value."""
        return confidence.quantile(self.value, self.std, q, method)

    def relative_std(self) -> float:
        """Coefficient of variation ``σ̂ / |µ̂|`` (inf when µ̂ = 0)."""
        if self.value == 0.0:
            return float("inf")
        return self.std / abs(self.value)


def estimate_from_moments(
    params: GUSParams,
    plugin_y: np.ndarray,
    sample_total: float,
    n_sample: int,
    *,
    label: str = "SUM",
) -> Estimate:
    """Finish an estimate from already-accumulated plug-in moments.

    ``params`` must be the (pruned) GUS whose lattice indexes
    ``plugin_y``; ``sample_total`` is ``Σ f`` over the sample and
    ``n_sample`` its row count.  This is the single finishing step
    shared by the batch :func:`estimate_sum` and the streaming
    :class:`repro.stream.StreamingEstimator` — both feed the same
    unbiasing recursion and variance formula, they only accumulate the
    moments differently.
    """
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    yhat = unbiased_y_terms(params, np.asarray(plugin_y, dtype=np.float64))
    var_raw = theorem1_variance(params, yhat)
    return Estimate(
        value=float(sample_total) / params.a,
        variance_raw=var_raw,
        n_sample=int(n_sample),
        label=label,
        extras={"a": params.a, "active_dims": params.lattice.dims},
    )


def estimate_sum(
    params: GUSParams,
    f_sample: np.ndarray,
    lineage_sample: Mapping[str, np.ndarray],
    *,
    label: str = "SUM",
) -> Estimate:
    """Estimate ``Σ f`` and its variance from a GUS sample.

    ``params`` is the single top GUS of the SOA-equivalent plan (the
    output of the rewriter); ``f_sample`` and ``lineage_sample`` are the
    per-row aggregate values and lineage columns of the *sample* the
    executable plan produced.  Inactive (unsampled) lineage dimensions
    are pruned first, so cost is ``O(2^k)`` group-bys in the number of
    *sampled* relations ``k``.
    """
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    f_sample = np.asarray(f_sample, dtype=np.float64)
    pruned = params.project_out_inactive()
    plugin = y_terms(f_sample, lineage_sample, pruned.lattice)
    return estimate_from_moments(
        pruned,
        plugin,
        float(np.sum(f_sample)),
        int(f_sample.shape[0]),
        label=label,
    )
