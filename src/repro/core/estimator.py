"""Theorem 1: unbiased SUM estimation and exact variance under GUS.

Given a GUS sample ``R`` of an expression ``R`` drawn by ``G(a, b̄)``,
the estimator of ``A = Σ_{t∈R} f(t)`` is ``X = (1/a) Σ_{t∈R} f(t)``
with ``E[X] = A`` and

    ``σ²(X) = Σ_{S⊆L} (c_S / a²) · y_S  −  y_∅``

where ``c = µ(b)`` is the Möbius transform of the second-order
inclusion probabilities (a *sampling* property) and

    ``y_S = Σ_{lineage-groups g on S} ( Σ_{t∈g} f(t) )²``

is a *data* property: group the full relation by the lineage attributes
of the base relations in ``S``, sum ``f`` within each group, and add up
the squares (``y_∅ = A²``; ``y_L = Σ f(t)²`` when lineage is unique).

Because the full data is normally unavailable, the same moments are
computed on the sample (``Y_S``) and then unbiased by the triangular
recursion of Section 6.3:

    ``Ŷ_S = ( Y_S − Σ_{∅≠T⊆Sᶜ} κ_{S,T} · Ŷ_{S∪T} ) / b_S``

solved from ``S = L`` downward, after which
``σ̂² = Σ_S (c_S/a²)·Ŷ_S − Ŷ_∅``.

All of this is exact, non-asymptotic, and verified in the test suite by
brute-force enumeration of entire sampling distributions.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core import confidence, kernels
from repro.core.gus import GUSParams
from repro.core.lattice import (
    SubsetLattice,
    iter_submasks,
    kappa,
)
from repro.errors import EstimationError

__all__ = [
    "group_ids",
    "group_firsts",
    "group_reduce",
    "group_reduce_multi",
    "y_terms",
    "y_terms_from_groups",
    "grouped_y_terms",
    "grouped_y_terms_from_groups",
    "grouped_y_terms_multi",
    "theorem1_variance",
    "grouped_theorem1_variance",
    "exact_moments",
    "unbiased_y_terms",
    "unbiased_y_terms_grouped",
    "estimate_from_moments",
    "estimate_sum",
    "estimate_sums_grouped",
    "estimate_sums_grouped_multi",
    "difference_inputs",
    "estimate_subset_sum",
    "estimate_difference",
    "estimate_subset_sums_grouped",
    "Estimate",
    "GroupedEstimates",
    "ClosedFormGroupedEstimates",
]


# The packing/sort kernels live in repro.core.kernels (shared with the
# pipeline's join factorization and optionally JIT-compiled); the
# historical private names stay importable here.
_pack_columns = kernels.pack_columns
_sorted_boundaries = kernels.sorted_boundaries


def group_ids(columns: Sequence[np.ndarray], n_rows: int) -> tuple[np.ndarray, int]:
    """Assign a dense group id to each row, grouping by ``columns``.

    With no columns every row falls in one group (the ``S = ∅`` case).
    Uses lexsort + boundary detection, O(n log n) with no hashing.
    """
    if n_rows == 0:
        return np.empty(0, dtype=np.int64), 0
    if not columns:
        return np.zeros(n_rows, dtype=np.int64), 1
    order, boundary = _sorted_boundaries(columns, n_rows)
    gids_sorted = np.cumsum(boundary) - 1
    gids = np.empty(n_rows, dtype=np.int64)
    gids[order] = gids_sorted
    return gids, int(gids_sorted[-1]) + 1


def group_firsts(
    gids: np.ndarray, n_groups: int, n_rows: int
) -> np.ndarray:
    """Index of each group's first occurrence in row order.

    Shared by every consumer that needs one representative row per
    dense group id (group key values, display order): handles the
    empty-input case and keeps the ``np.minimum.at`` idiom in one
    place.
    """
    if n_rows == 0:
        return np.empty(0, dtype=np.int64)
    first = np.full(n_groups, n_rows, dtype=np.int64)
    np.minimum.at(first, gids, np.arange(n_rows))
    return first


def group_reduce(
    columns: Sequence[np.ndarray], weights: np.ndarray
) -> tuple[list[np.ndarray], np.ndarray]:
    """Compact rows to their distinct keys, summing ``weights`` per key.

    Returns ``(key_columns, sums)``: one array per input column holding
    each distinct key combination once (in sorted key order), and the
    total weight that fell on it.  This is the accumulator core shared
    by the batch :func:`y_terms` and the streaming
    :class:`repro.stream.MomentSketch`: a group-sum table is additive,
    so two tables (from two batches, shards, or sketches) merge exactly
    by concatenating and reducing again.
    """
    keys, sums_list = group_reduce_multi(columns, [weights])
    return keys, sums_list[0]


def group_reduce_multi(
    columns: Sequence[np.ndarray], weight_vectors: Sequence[np.ndarray]
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """:func:`group_reduce` for several weight vectors over one sort.

    The lexsort dominates the cost of a reduce; accumulators that track
    both ``Σ f`` and a row count per key (the grouped sketch) pay for it
    once and run one ``bincount`` per weight vector.
    """
    weights = [np.asarray(w, dtype=np.float64) for w in weight_vectors]
    n_rows = weights[0].shape[0]
    if n_rows == 0:
        return (
            [np.empty(0, dtype=c.dtype) for c in columns],
            [np.empty(0) for _ in weights],
        )
    if not columns:
        return [], [np.array([float(np.sum(w))]) for w in weights]
    order, boundary = _sorted_boundaries(columns, n_rows)
    gids_sorted = np.cumsum(boundary) - 1
    n_groups = int(gids_sorted[-1]) + 1
    firsts = order[boundary]
    keys = [np.asarray(col)[firsts] for col in columns]
    sums = [
        kernels.group_sums(gids_sorted, w[order], n_groups)
        for w in weights
    ]
    return keys, sums


def y_terms_from_groups(
    group_sums: np.ndarray,
    key_columns: Sequence[np.ndarray],
    lattice: SubsetLattice,
) -> np.ndarray:
    """``y_S`` for every ``S``, from a compacted full-lineage group table.

    ``key_columns`` holds one distinct full-lineage key per row (column
    ``i`` is ``lattice.dims[i]``) and ``group_sums`` the per-group sum
    of ``f``.  Because a lineage group on ``S ⊂ L`` is a union of
    full-lineage groups, grouping the *compacted* table on the ``S``
    columns gives the same sums as grouping the raw rows — so each
    per-mask lexsort runs over ``#groups`` rows, not ``#rows``, and the
    full-lineage sort was paid exactly once.
    """
    group_sums = np.asarray(group_sums, dtype=np.float64)
    if len(key_columns) != lattice.n:
        raise EstimationError(
            f"{len(key_columns)} key columns for a lattice of {lattice.n} dims"
        )
    n_groups = group_sums.shape[0]
    out = np.zeros(lattice.size, dtype=np.float64)
    if n_groups == 0:
        return out
    total = float(np.sum(group_sums))
    for mask in lattice.masks():
        if mask == 0:
            out[0] = total * total
        elif mask == lattice.full_mask:
            out[mask] = float(np.dot(group_sums, group_sums))
        else:
            cols = [key_columns[i] for i in range(lattice.n) if mask >> i & 1]
            gids, n_sub = group_ids(cols, n_groups)
            sums = np.bincount(gids, weights=group_sums, minlength=n_sub)
            out[mask] = float(np.dot(sums, sums))
    return out


def y_terms(
    f: np.ndarray,
    lineage: Mapping[str, np.ndarray],
    lattice: SubsetLattice,
) -> np.ndarray:
    """Compute ``y_S`` for every ``S`` in the lattice.

    ``f`` holds the aggregated expression per row; ``lineage`` maps each
    base-relation name in the lattice to its int64 lineage column.
    Applied to the full data this yields the exact data moments; applied
    to a sample it yields the plug-in ``Y_S``.

    Thin batch wrapper over the accumulator core: one
    :func:`group_reduce` pass compacts the rows on the full lineage, and
    :func:`y_terms_from_groups` derives every submask moment from the
    compacted table.
    """
    f = np.asarray(f, dtype=np.float64)
    missing = [d for d in lattice.dims if d not in lineage]
    if missing:
        raise EstimationError(f"lineage columns missing for {missing}")
    cols = [np.asarray(lineage[d]) for d in lattice.dims]
    keys, sums = group_reduce(cols, f)
    return y_terms_from_groups(sums, keys, lattice)


def grouped_y_terms_multi(
    sums_list: Sequence[np.ndarray],
    key_columns: Sequence[np.ndarray],
    owner: np.ndarray,
    n_out: int,
    lattice: SubsetLattice,
) -> list[np.ndarray]:
    """Per-output-group ``y_S`` matrices for several weight vectors.

    The compacted table holds one row per distinct *(output group,
    full-lineage key)* pair: each ``sums_list[j][i]`` is entry ``i``'s
    ``Σ f_j``, ``key_columns`` its lineage key (column ``k`` is
    ``lattice.dims[k]``), and ``owner[i]`` the dense id of the output
    group it belongs to.  Returns one ``(n_out, lattice.size)`` matrix
    per weight vector; matrix ``j``'s row ``g`` is the moment vector
    :func:`y_terms` would produce on group ``g``'s ``f_j`` rows alone —
    computed for *all* groups simultaneously, never a per-group Python
    loop.  The subgroup structure of each lattice mask depends only on
    the keys, so its sort is paid once and each weight vector adds only
    ``bincount`` passes — this is what lets a multi-aggregate GROUP BY
    query reuse one compaction for every aggregate.

    This works because a GUS filter restricted to any data-defined row
    subset is the same GUS: group membership is a property of the data,
    so Theorem 1 applies verbatim group by group.
    """
    sums_list = [np.asarray(s, dtype=np.float64) for s in sums_list]
    owner = np.asarray(owner, dtype=np.int64)
    if len(key_columns) != lattice.n:
        raise EstimationError(
            f"{len(key_columns)} key columns for a lattice of {lattice.n} dims"
        )
    for sums in sums_list:
        if owner.shape != sums.shape:
            raise EstimationError(
                f"owner ids have shape {owner.shape}; group sums have "
                f"shape {sums.shape}"
            )
    outs = [
        np.zeros((n_out, lattice.size), dtype=np.float64) for _ in sums_list
    ]
    n_entries = owner.shape[0]
    if n_entries == 0 or n_out == 0 or not sums_list:
        return outs
    for mask in lattice.masks():
        if mask == 0:
            for out, sums in zip(outs, sums_list):
                totals = np.bincount(owner, weights=sums, minlength=n_out)
                out[:, 0] = totals * totals
        elif mask == lattice.full_mask:
            for out, sums in zip(outs, sums_list):
                out[:, mask] = np.bincount(
                    owner, weights=sums * sums, minlength=n_out
                )
        else:
            cols = [owner] + [
                key_columns[i] for i in range(lattice.n) if mask >> i & 1
            ]
            sub_ids, n_sub = group_ids(cols, n_entries)
            # Each sub-group lies inside exactly one output group; any
            # member's owner id identifies it.
            sub_owner = np.empty(n_sub, dtype=np.int64)
            sub_owner[sub_ids] = owner
            for out, sums in zip(outs, sums_list):
                sub_sums = np.bincount(
                    sub_ids, weights=sums, minlength=n_sub
                )
                out[:, mask] = np.bincount(
                    sub_owner, weights=sub_sums * sub_sums, minlength=n_out
                )
    return outs


def grouped_y_terms_from_groups(
    group_sums: np.ndarray,
    key_columns: Sequence[np.ndarray],
    owner: np.ndarray,
    n_out: int,
    lattice: SubsetLattice,
) -> np.ndarray:
    """Per-output-group ``y_S`` matrix from a compacted group table.

    Single-vector wrapper over :func:`grouped_y_terms_multi`.
    """
    return grouped_y_terms_multi(
        [group_sums], key_columns, owner, n_out, lattice
    )[0]


def grouped_y_terms(
    f: np.ndarray,
    lineage: Mapping[str, np.ndarray],
    lattice: SubsetLattice,
    gids: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Per-group plug-in moments ``Y_S`` for every group and mask.

    ``gids`` assigns each row a dense group id in ``[0, n_groups)``
    (the output of :func:`group_ids` on the GROUP BY columns).  One
    :func:`group_reduce` pass compacts the rows on *(group, full
    lineage)*; :func:`grouped_y_terms_from_groups` then derives every
    submask moment for all groups at once.
    """
    f = np.asarray(f, dtype=np.float64)
    gids = np.asarray(gids, dtype=np.int64)
    if gids.shape != f.shape:
        raise EstimationError(
            f"group ids have shape {gids.shape}; f has shape {f.shape}"
        )
    missing = [d for d in lattice.dims if d not in lineage]
    if missing:
        raise EstimationError(f"lineage columns missing for {missing}")
    cols = [gids] + [np.asarray(lineage[d]) for d in lattice.dims]
    keys, sums = group_reduce(cols, f)
    return grouped_y_terms_from_groups(
        sums, keys[1:], keys[0], n_groups, lattice
    )


def theorem1_variance(params: GUSParams, y: np.ndarray) -> float:
    """``σ²(X) = Σ_S (c_S/a²)·y_S − y_∅`` for given data moments."""
    if params.a <= 0.0:
        raise EstimationError("variance undefined for a = 0 (null sampling)")
    c = params.c_vector()
    return float(np.dot(c, y) / (params.a * params.a) - y[0])


def exact_moments(
    params: GUSParams,
    f: np.ndarray,
    lineage: Mapping[str, np.ndarray],
) -> tuple[float, float]:
    """Exact ``(E[X], σ²(X))`` computed from the *full* data.

    Used by the test oracles, the SOA checker, and the Section 8
    robustness application (where the "sample" is the database itself).
    """
    pruned = params.project_out_inactive()
    y = y_terms(f, lineage, pruned.lattice)
    total = float(np.sum(np.asarray(f, dtype=np.float64)))
    return total, theorem1_variance(pruned, y)


def unbiased_y_terms(params: GUSParams, plugin_y: np.ndarray) -> np.ndarray:
    """Solve the triangular system for unbiased ``Ŷ_S``.

    ``E[Y_S] = Σ_{T⊆Sᶜ} κ_{S,T} · y_{S∪T}`` with ``κ_{S,∅} = b_S``; the
    system is triangular in ``|S|`` and solved from the full set down.
    Requires every ``b_S > 0`` (a GUS that can never retain a pair with
    agreement pattern ``S`` carries no information about ``y_S``).
    """
    _check_unbiasable(params)
    b = params.b
    full = params.lattice.full_mask
    yhat = np.zeros(params.lattice.size, dtype=np.float64)
    for mask in params.lattice.masks_by_descending_size():
        comp = full ^ mask
        acc = float(plugin_y[mask])
        for t_mask in iter_submasks(comp):
            if t_mask == 0:
                continue
            acc -= kappa(b, mask, t_mask) * yhat[mask | t_mask]
        yhat[mask] = acc / float(b[mask])
    return yhat


def _check_unbiasable(params: GUSParams) -> None:
    """Raise when some ``b_T = 0`` makes the recursion unsolvable."""
    b = params.b
    if np.any(b <= 0.0):
        bad = [
            sorted(params.lattice.set_of(m))
            for m in params.lattice.masks()
            if b[m] <= 0.0
        ]
        raise EstimationError(
            f"cannot unbias y-terms: b_T = 0 for T in {bad}; the sampling "
            "process never observes such pairs"
        )


def unbiased_y_terms_grouped(
    params: GUSParams, plugin_y: np.ndarray
) -> np.ndarray:
    """:func:`unbiased_y_terms` applied to every row of a moment matrix.

    ``plugin_y`` is ``(n_groups, lattice.size)``; the triangular
    recursion runs once per mask with all groups advanced together.
    The per-mask operation sequence matches the scalar solver exactly,
    so a one-group matrix reproduces :func:`unbiased_y_terms` to the
    last float operation.
    """
    _check_unbiasable(params)
    plugin_y = np.asarray(plugin_y, dtype=np.float64)
    if plugin_y.ndim != 2 or plugin_y.shape[1] != params.lattice.size:
        raise EstimationError(
            f"moment matrix of shape {plugin_y.shape} does not cover "
            f"lattice of size {params.lattice.size}"
        )
    b = params.b
    full = params.lattice.full_mask
    yhat = np.zeros_like(plugin_y)
    for mask in params.lattice.masks_by_descending_size():
        comp = full ^ mask
        acc = plugin_y[:, mask].copy()
        for t_mask in iter_submasks(comp):
            if t_mask == 0:
                continue
            acc -= kappa(b, mask, t_mask) * yhat[:, mask | t_mask]
        yhat[:, mask] = acc / float(b[mask])
    return yhat


def grouped_theorem1_variance(params: GUSParams, y: np.ndarray) -> np.ndarray:
    """Theorem 1's variance for every row of a ``(n_groups, size)`` matrix."""
    if params.a <= 0.0:
        raise EstimationError("variance undefined for a = 0 (null sampling)")
    c = params.c_vector()
    y = np.asarray(y, dtype=np.float64)
    return y @ c / (params.a * params.a) - y[:, 0]


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its estimated sampling variance.

    ``variance_raw`` keeps the signed value produced by the unbiased
    estimator (which can dip below zero on very small samples);
    ``variance`` clamps at zero, and ``clamped`` records whether the
    clamp fired so callers can report honestly.
    """

    value: float
    variance_raw: float
    n_sample: int
    label: str = "SUM"
    extras: dict = field(default_factory=dict, repr=False)

    @property
    def clamped(self) -> bool:
        return self.variance_raw < 0.0

    @property
    def variance(self) -> float:
        return max(self.variance_raw, 0.0)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def ci(
        self, level: float = 0.95, method: str = "normal"
    ) -> confidence.ConfidenceInterval:
        """Two-sided confidence interval (``normal`` or ``chebyshev``)."""
        return confidence.interval(self.value, self.std, level, method)

    def quantile(self, q: float, method: str = "normal") -> float:
        """One-sided ``q``-quantile — the ``QUANTILE(agg, q)`` value."""
        return confidence.quantile(self.value, self.std, q, method)

    def relative_std(self) -> float:
        """Coefficient of variation ``σ̂ / |µ̂|`` (inf when µ̂ = 0)."""
        if self.value == 0.0:
            return float("inf")
        return self.std / abs(self.value)


def estimate_from_moments(
    params: GUSParams,
    plugin_y: np.ndarray,
    sample_total: float,
    n_sample: int,
    *,
    label: str = "SUM",
) -> Estimate:
    """Finish an estimate from already-accumulated plug-in moments.

    ``params`` must be the (pruned) GUS whose lattice indexes
    ``plugin_y``; ``sample_total`` is ``Σ f`` over the sample and
    ``n_sample`` its row count.  This is the single finishing step
    shared by the batch :func:`estimate_sum` and the streaming
    :class:`repro.stream.StreamingEstimator` — both feed the same
    unbiasing recursion and variance formula, they only accumulate the
    moments differently.
    """
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    yhat = unbiased_y_terms(params, np.asarray(plugin_y, dtype=np.float64))
    var_raw = theorem1_variance(params, yhat)
    return Estimate(
        value=float(sample_total) / params.a,
        variance_raw=var_raw,
        n_sample=int(n_sample),
        label=label,
        extras={"a": params.a, "active_dims": params.lattice.dims},
    )


def estimate_sum(
    params: GUSParams,
    f_sample: np.ndarray,
    lineage_sample: Mapping[str, np.ndarray],
    *,
    label: str = "SUM",
) -> Estimate:
    """Estimate ``Σ f`` and its variance from a GUS sample.

    ``params`` is the single top GUS of the SOA-equivalent plan (the
    output of the rewriter); ``f_sample`` and ``lineage_sample`` are the
    per-row aggregate values and lineage columns of the *sample* the
    executable plan produced.  Inactive (unsampled) lineage dimensions
    are pruned first, so cost is ``O(2^k)`` group-bys in the number of
    *sampled* relations ``k``.
    """
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    f_sample = np.asarray(f_sample, dtype=np.float64)
    pruned = params.project_out_inactive()
    plugin = y_terms(f_sample, lineage_sample, pruned.lattice)
    return estimate_from_moments(
        pruned,
        plugin,
        float(np.sum(f_sample)),
        int(f_sample.shape[0]),
        label=label,
    )


@dataclass(frozen=True)
class GroupedEstimates:
    """Per-group point estimates and variances, stored columnwise.

    The arrays are parallel over the dense group ids the estimates were
    computed for: ``values[g]`` is group ``g``'s estimate of its
    ``Σ f``, ``variance_raw[g]`` the signed unbiased variance estimate
    and ``n_samples[g]`` the group's sample row count.  :meth:`estimate`
    materializes one group as a scalar :class:`Estimate`, equal to what
    the ungrouped estimator would produce on that group's rows alone.

    Two hard edges are deliberate:

    * groups never observed in the sample simply have no row here — a
      sample carries no information about a group it missed, so callers
      comparing against ground truth must treat absent groups as
      uncovered;
    * *singleton* groups (``n_samples[g] == 1``) admit no pair-based
      variance information, and groups a caller allocated but the
      sample never populated (``n_samples[g] == 0``) carry none at all
      — so :meth:`ci_bounds` and :meth:`quantile` report ``NaN`` for
      both rather than the misleading zero-width answers a clamped
      variance would give.  The raw variance estimates are kept (still
      unbiased in expectation) for callers that aggregate across
      groups.
    """

    values: np.ndarray
    variance_raw: np.ndarray
    n_samples: np.ndarray
    label: str = "SUM"
    extras: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=np.float64)
        )
        object.__setattr__(
            self,
            "variance_raw",
            np.asarray(self.variance_raw, dtype=np.float64),
        )
        object.__setattr__(
            self, "n_samples", np.asarray(self.n_samples, dtype=np.int64)
        )
        if not (
            self.values.shape == self.variance_raw.shape == self.n_samples.shape
        ):
            raise EstimationError(
                "grouped estimate arrays must be parallel; got shapes "
                f"{self.values.shape}, {self.variance_raw.shape}, "
                f"{self.n_samples.shape}"
            )

    @property
    def n_groups(self) -> int:
        return int(self.values.shape[0])

    def __len__(self) -> int:
        return self.n_groups

    @property
    def variance(self) -> np.ndarray:
        """Variances clamped at zero (see :class:`Estimate`)."""
        return np.maximum(self.variance_raw, 0.0)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    @property
    def clamped(self) -> np.ndarray:
        """Boolean mask of groups whose variance clamp fired."""
        return self.variance_raw < 0.0

    @property
    def singleton(self) -> np.ndarray:
        """Boolean mask of groups observed through a single sample row."""
        return self.n_samples == 1

    def estimate(self, g: int) -> Estimate:
        """Group ``g`` as a scalar :class:`Estimate`."""
        return Estimate(
            value=float(self.values[g]),
            variance_raw=float(self.variance_raw[g]),
            n_sample=int(self.n_samples[g]),
            label=self.label,
            extras=dict(self.extras),
        )

    def __iter__(self):
        return (self.estimate(g) for g in range(self.n_groups))

    def take(self, indices: np.ndarray) -> "GroupedEstimates":
        """Gather a subset of groups (e.g. after a HAVING filter)."""
        return type(self)(
            values=self.values[indices],
            variance_raw=self.variance_raw[indices],
            n_samples=self.n_samples[indices],
            label=self.label,
            extras=dict(self.extras),
        )

    def _spread_std(self) -> np.ndarray:
        """Std with ``NaN`` for groups whose spread is unknowable.

        At most one observed row there is no pair information, so any
        finite interval or quantile would be fiction.
        """
        std = self.std.copy()
        std[self.n_samples <= 1] = np.nan
        return std

    def ci_bounds(
        self, level: float = 0.95, method: str = "normal"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-group two-sided interval bounds ``(lo, hi)``.

        Empty and singleton groups get ``NaN`` bounds.
        """
        k = confidence.interval(0.0, 1.0, level, method).hi
        std = self._spread_std()
        return self.values - k * std, self.values + k * std

    def quantile(self, q: float, method: str = "normal") -> np.ndarray:
        """Per-group one-sided ``q``-quantiles of the estimators.

        Applies the same ``NaN`` policy as :meth:`ci_bounds` — a
        quantile from a group with no pair information is equally
        fictitious.
        """
        shift = confidence.quantile(0.0, 1.0, q, method)
        return self.values + shift * self._spread_std()


def estimate_sums_grouped(
    params: GUSParams,
    f_sample: np.ndarray,
    lineage_sample: Mapping[str, np.ndarray],
    gids: np.ndarray,
    n_groups: int,
    *,
    label: str = "SUM",
) -> GroupedEstimates:
    """Estimate ``Σ f`` per group with Theorem 1 error bounds.

    The grouped twin of :func:`estimate_sum`: ``gids`` assigns each
    sample row a dense group id (from :func:`group_ids` over the GROUP
    BY columns) and every group's estimate/variance comes out of one
    vectorized pass — per-mask lexsorts over the compacted *(group,
    lineage)* table and a matrix unbiasing recursion, never a per-group
    Python loop.  Restricting a GUS to a data-defined subset leaves its
    ``(a, b̄)`` unchanged, so each group's numbers equal what
    :func:`estimate_sum` would return on that group's rows alone.
    """
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    f_sample = np.asarray(f_sample, dtype=np.float64)
    gids = np.asarray(gids, dtype=np.int64)
    if gids.shape != f_sample.shape:
        raise EstimationError(
            f"group ids have shape {gids.shape}; f has shape {f_sample.shape}"
        )
    if gids.size and (int(gids.min()) < 0 or int(gids.max()) >= n_groups):
        raise EstimationError(
            f"group ids must lie in [0, {n_groups}); got range "
            f"[{int(gids.min())}, {int(gids.max())}]"
        )
    return estimate_sums_grouped_multi(
        params, [f_sample], lineage_sample, gids, n_groups, labels=[label]
    )[0]


def estimate_sums_grouped_multi(
    params: GUSParams,
    f_vectors: Sequence[np.ndarray],
    lineage_sample: Mapping[str, np.ndarray],
    gids: np.ndarray,
    n_groups: int,
    *,
    labels: Sequence[str] | None = None,
) -> list[GroupedEstimates]:
    """Grouped estimates for several aggregate vectors over one sample.

    The expensive part of grouped estimation is keyed on the *(group,
    lineage)* columns only: the compaction sort and every lattice
    mask's subgroup structure are identical for all aggregates of one
    query.  This entry point pays for them once and adds a ``bincount``
    per weight vector — a multi-aggregate GROUP BY (TPC-H Q1 has six)
    costs barely more than a single-aggregate one.
    """
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    f_vectors = [np.asarray(f, dtype=np.float64) for f in f_vectors]
    gids = np.asarray(gids, dtype=np.int64)
    if labels is None:
        labels = ["SUM"] * len(f_vectors)
    if len(labels) != len(f_vectors):
        raise EstimationError(
            f"{len(labels)} labels for {len(f_vectors)} aggregate vectors"
        )
    for f in f_vectors:
        if gids.shape != f.shape:
            raise EstimationError(
                f"group ids have shape {gids.shape}; f has shape {f.shape}"
            )
    if gids.size and (int(gids.min()) < 0 or int(gids.max()) >= n_groups):
        raise EstimationError(
            f"group ids must lie in [0, {n_groups}); got range "
            f"[{int(gids.min())}, {int(gids.max())}]"
        )
    pruned = params.project_out_inactive()
    missing = [d for d in pruned.lattice.dims if d not in lineage_sample]
    if missing:
        raise EstimationError(f"lineage columns missing for {missing}")
    cols = [gids] + [
        np.asarray(lineage_sample[d]) for d in pruned.lattice.dims
    ]
    keys, sums_list = group_reduce_multi(cols, f_vectors)
    plugins = grouped_y_terms_multi(
        sums_list, keys[1:], keys[0], n_groups, pruned.lattice
    )
    counts = np.bincount(gids, minlength=n_groups)
    out = []
    for f, plugin, label in zip(f_vectors, plugins, labels):
        yhat = unbiased_y_terms_grouped(pruned, plugin)
        var_raw = grouped_theorem1_variance(pruned, yhat)
        totals = np.bincount(gids, weights=f, minlength=n_groups)
        out.append(
            GroupedEstimates(
                values=totals / params.a,
                variance_raw=var_raw,
                n_samples=counts,
                label=label,
                extras={"a": params.a, "active_dims": pruned.lattice.dims},
            )
        )
    return out


# -- coordinated subset sums and version differences -------------------------


class ClosedFormGroupedEstimates(GroupedEstimates):
    """Grouped estimates whose variance is closed-form per element.

    The pair-based Theorem 1 machinery cannot bound a singleton group
    (one row carries no pair information), so :class:`GroupedEstimates`
    reports ``NaN`` intervals for it.  Subset-sum estimates under
    independent-per-key Bernoulli draws have an exact per-element
    variance — ``(1−p)/p² · Σ f²`` needs no pairs — so here only groups
    with *no* observed key lack spread information.
    """

    def _spread_std(self) -> np.ndarray:
        std = self.std.copy()
        std[self.n_samples == 0] = np.nan
        return std


def difference_inputs(
    hi_key_columns: Sequence[np.ndarray],
    hi_f_vectors: Sequence[np.ndarray],
    lo_key_columns: Sequence[np.ndarray],
    lo_f_vectors: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-key signed aggregate inputs ``g(k) = f_hi(k) − f_lo(k)``.

    Each side contributes its per-row aggregate values keyed by the
    coordination key columns (lineage row ids, optionally prefixed by
    GROUP BY columns).  One :func:`group_reduce_multi` over the
    hi-then-lo concatenation nets out every key: keys present on both
    sides reduce to their value change, keys on one side only keep
    their signed contribution (inserted or filtered-out rows).
    Returns ``(key_columns, g_vectors)`` in sorted key order —
    deterministic for any chunking of the inputs because the keys are
    unique per side and the reduction is a per-key sum.
    """
    if len(hi_key_columns) != len(lo_key_columns):
        raise EstimationError(
            f"{len(hi_key_columns)} hi key columns vs "
            f"{len(lo_key_columns)} lo key columns"
        )
    if len(hi_f_vectors) != len(lo_f_vectors):
        raise EstimationError(
            f"{len(hi_f_vectors)} hi aggregate vectors vs "
            f"{len(lo_f_vectors)} lo aggregate vectors"
        )
    columns = [
        np.concatenate([np.asarray(h), np.asarray(l)])
        for h, l in zip(hi_key_columns, lo_key_columns)
    ]
    weights = [
        np.concatenate(
            [
                np.asarray(h, dtype=np.float64),
                -np.asarray(l, dtype=np.float64),
            ]
        )
        for h, l in zip(hi_f_vectors, lo_f_vectors)
    ]
    return group_reduce_multi(columns, weights)


def _check_rate(p: float) -> float:
    p = float(p)
    if not 0.0 < p <= 1.0:
        raise EstimationError(f"Bernoulli rate {p} outside (0, 1]")
    return p


def estimate_subset_sum(
    p: float, f: np.ndarray, *, label: str = "SUM"
) -> Estimate:
    """Horvitz–Thompson subset sum under per-key Bernoulli(``p``) draws.

    ``f`` holds the observed per-key values of a subset-sum aggregate
    (for a version difference, the netted ``g`` of
    :func:`difference_inputs`; for a single segment, its per-key
    contributions).  With every key kept independently with probability
    ``p``,

        ``X = Σ_sample f / p``          is unbiased for ``Σ_all f``, and
        ``σ̂² = (1−p)/p² · Σ_sample f²`` is unbiased for
        ``σ²(X) = (1−p)/p · Σ_all f²``.

    Keys whose value did not change between coordinated versions have
    ``f = 0`` and contribute nothing to the variance — the whole point
    of sharing draws across versions.  At ``p = 1`` both sums are exact
    and the variance is identically zero.

    ``extras["nonzero"]`` counts the keys with ``f != 0`` — the
    *effective* sample size.  Both the estimate and σ̂ are carried
    entirely by those keys, so any sample-size gate on interval quality
    (e.g. the fuzzer's coverage check) must look at this count, not at
    ``n_sample``.
    """
    p = _check_rate(p)
    f = np.asarray(f, dtype=np.float64)
    total = float(np.sum(f))
    squares = float(np.dot(f, f))
    return Estimate(
        value=total / p,
        variance_raw=(1.0 - p) / (p * p) * squares,
        n_sample=int(f.shape[0]),
        label=label,
        extras={
            "p": p,
            "estimator": "subset-sum",
            "nonzero": int(np.count_nonzero(f)),
        },
    )


def estimate_difference(
    p: float,
    hi_key_columns: Sequence[np.ndarray],
    hi_f: np.ndarray,
    lo_key_columns: Sequence[np.ndarray],
    lo_f: np.ndarray,
    *,
    label: str = "SUM",
) -> Estimate:
    """Estimate ``Σ f_hi − Σ f_lo`` from coordinated samples of two
    versions.

    Requires the two samples to share their Bernoulli draws by key
    (:class:`~repro.sampling.CoordinatedBernoulli`): only then is the
    per-key indicator common to both sides and the difference a single
    subset sum over ``g = f_hi − f_lo``.
    """
    _keys, gs = difference_inputs(
        hi_key_columns, [hi_f], lo_key_columns, [lo_f]
    )
    return estimate_subset_sum(p, gs[0], label=label)


def estimate_subset_sums_grouped(
    p: float,
    f: np.ndarray,
    gids: np.ndarray,
    n_groups: int,
    *,
    label: str = "SUM",
) -> ClosedFormGroupedEstimates:
    """Per-segment subset sums: :func:`estimate_subset_sum` per group.

    ``gids`` assigns each observed key a dense segment id; each
    segment's estimate and variance equal what the scalar estimator
    would produce on that segment's keys alone (segment membership is a
    data property, so the per-key draws restricted to a segment are the
    same Bernoulli process).
    """
    p = _check_rate(p)
    f = np.asarray(f, dtype=np.float64)
    gids = np.asarray(gids, dtype=np.int64)
    if gids.shape != f.shape:
        raise EstimationError(
            f"group ids have shape {gids.shape}; f has shape {f.shape}"
        )
    if gids.size and (int(gids.min()) < 0 or int(gids.max()) >= n_groups):
        raise EstimationError(
            f"group ids must lie in [0, {n_groups}); got range "
            f"[{int(gids.min())}, {int(gids.max())}]"
        )
    totals = np.bincount(gids, weights=f, minlength=n_groups)
    squares = np.bincount(gids, weights=f * f, minlength=n_groups)
    counts = np.bincount(gids, minlength=n_groups)
    return ClosedFormGroupedEstimates(
        values=totals / p,
        variance_raw=(1.0 - p) / (p * p) * squares,
        n_samples=counts,
        label=label,
        extras={"p": p, "estimator": "subset-sum"},
    )
