"""Subset-lattice machinery used throughout the GUS algebra.

A GUS method over a lineage schema ``L`` carries one coefficient ``b_T``
per subset ``T ⊆ L``.  This module provides a compact bitmask
representation of that lattice together with the two transforms the
theory needs:

* the **zeta transform** ``(ζv)[S] = Σ_{T ⊆ S} v[T]``, and
* the **Möbius transform** ``(µv)[S] = Σ_{T ⊆ S} (−1)^{|S|−|T|} v[T]``,

which are mutual inverses on the subset lattice.  Theorem 1's variance
coefficients are exactly ``c = µ(b)``, and the unbiasing coefficients
``κ_{S,T}`` are Möbius transforms of ``b`` restricted to the sub-lattice
above ``S`` (see :func:`kappa`).

Vectors over the lattice are numpy arrays of length ``2**n`` indexed by
bitmask; bit ``i`` corresponds to ``lattice.dims[i]``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from functools import lru_cache

import numpy as np

from repro.errors import LatticeError

#: Largest supported lineage schema.  2**16 lattice cells is already far
#: beyond any realistic query (the paper's largest example has 4).
MAX_DIMS = 16

#: Largest arity for which the transforms use a memoized dense matrix.
#: At ``n = 8`` each matrix is 256×256 (0.5 MB); beyond that the
#: per-axis sweep wins on memory and the matmul stops being faster.
MATRIX_MAX_DIMS = 8


class SubsetLattice:
    """An ordered set of dimension names with bitmask subset encoding.

    The dimension order is canonical (sorted) so that two lattices over
    the same names are interchangeable, which makes GUS parameter
    objects comparable across independently-derived plans.
    """

    __slots__ = ("dims", "_index")

    def __init__(self, dims: Iterable[str]) -> None:
        ordered = tuple(sorted(set(dims)))
        if len(ordered) > MAX_DIMS:
            raise LatticeError(
                f"lineage schema has {len(ordered)} relations; "
                f"at most {MAX_DIMS} are supported"
            )
        self.dims: tuple[str, ...] = ordered
        self._index: dict[str, int] = {d: i for i, d in enumerate(ordered)}

    # -- basic geometry -------------------------------------------------

    @property
    def n(self) -> int:
        """Number of dimensions (base relations in the lineage schema)."""
        return len(self.dims)

    @property
    def size(self) -> int:
        """Number of lattice cells, ``2**n``."""
        return 1 << self.n

    @property
    def full_mask(self) -> int:
        """Bitmask of the complete dimension set."""
        return self.size - 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubsetLattice) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __repr__(self) -> str:
        return f"SubsetLattice({list(self.dims)!r})"

    # -- mask <-> name-set conversion ------------------------------------

    def mask_of(self, subset: Iterable[str]) -> int:
        """Return the bitmask for a collection of dimension names."""
        mask = 0
        for name in subset:
            try:
                mask |= 1 << self._index[name]
            except KeyError:
                raise LatticeError(
                    f"dimension {name!r} not in lattice {self.dims}"
                ) from None
        return mask

    def set_of(self, mask: int) -> frozenset[str]:
        """Return the dimension names encoded by ``mask``."""
        if not 0 <= mask < self.size:
            raise LatticeError(f"mask {mask} out of range for {self!r}")
        return frozenset(d for i, d in enumerate(self.dims) if mask >> i & 1)

    def masks(self) -> range:
        """All cell masks, in increasing numeric order."""
        return range(self.size)

    def masks_by_descending_size(self) -> list[int]:
        """All cell masks ordered from the full set down to ``∅``.

        This is the evaluation order of the ``Ŷ_S`` unbiasing recursion,
        which is solved top-down from ``S = L``.
        """
        return sorted(self.masks(), key=lambda m: -_popcount(m))

    def contains(self, other: "SubsetLattice") -> bool:
        """True when every dimension of ``other`` appears in ``self``."""
        return set(other.dims) <= set(self.dims)

    def embed_mask(self, other: "SubsetLattice", mask: int) -> int:
        """Re-encode ``other``'s ``mask`` in this (super-)lattice."""
        return self.mask_of(other.set_of(mask))

    def restrict_mask(self, mask: int, dims: Iterable[str]) -> int:
        """Intersect ``mask`` with the named dimensions (``T ∩ L₁``)."""
        return mask & self.mask_of(dims)


def _popcount(mask: int) -> int:
    return mask.bit_count()


def popcount(mask: int) -> int:
    """Number of dimensions in a subset mask."""
    return mask.bit_count()


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every submask of ``mask``, including ``0`` and ``mask``.

    Uses the classic descending-submask enumeration, which visits each
    of the ``2**popcount(mask)`` submasks exactly once.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def validate_vector(lattice: SubsetLattice, vec: Sequence[float]) -> np.ndarray:
    """Coerce ``vec`` to a float array and check it covers the lattice."""
    arr = np.asarray(vec, dtype=np.float64)
    if arr.shape != (lattice.size,):
        raise LatticeError(
            f"vector of shape {arr.shape} does not cover lattice "
            f"of size {lattice.size}"
        )
    return arr


def _mask_popcounts(masks: np.ndarray) -> np.ndarray:
    """Vectorized popcount over an int64 mask array."""
    out = np.zeros(masks.shape, dtype=np.int64)
    work = masks.copy()
    while work.any():
        out += work & 1
        work >>= 1
    return out


@lru_cache(maxsize=2 * (MATRIX_MAX_DIMS + 1))
def subset_transform_matrix(n: int, signed: bool) -> np.ndarray:
    """Memoized dense ``2ⁿ×2ⁿ`` zeta (``signed=False``) or Möbius
    (``signed=True``) subset-transform matrix.

    ``M[S, T]`` is nonzero iff ``T ⊆ S``; the signed variant carries
    ``(−1)^{|S|−|T|}``.  Advisor/optimizer scoring evaluates Theorem 1
    for hundreds of candidate GUS vectors over the *same* lattice arity,
    so the matrix is built once per arity and every transform becomes a
    single matmul.  Superset transforms use the transpose (``T ⊆ S``
    read backwards).  Returned arrays are read-only — never mutate them.
    """
    size = 1 << n
    s = np.arange(size, dtype=np.int64)[:, None]
    t = np.arange(size, dtype=np.int64)[None, :]
    is_subset = (t & ~s) == 0
    if signed:
        odd = (_mask_popcounts(s ^ t) & 1).astype(bool)
        matrix = np.where(is_subset, np.where(odd, -1.0, 1.0), 0.0)
    else:
        matrix = is_subset.astype(np.float64)
    matrix.setflags(write=False)
    return matrix


def _sweep(vec: np.ndarray, n: int, *, sign: float, supersets: bool) -> np.ndarray:
    """Per-axis O(n·2ⁿ) transform sweep (fallback for large arities)."""
    out = np.array(vec, dtype=np.float64, copy=True).reshape((2,) * n)
    for axis in range(n):
        hi = [slice(None)] * n
        lo = [slice(None)] * n
        hi[axis], lo[axis] = 1, 0
        if supersets:
            out[tuple(lo)] += sign * out[tuple(hi)]
        else:
            out[tuple(hi)] += sign * out[tuple(lo)]
    return out.reshape(-1)


def zeta_subsets(vec: np.ndarray, n: int) -> np.ndarray:
    """Subset-sum (zeta) transform: ``out[S] = Σ_{T⊆S} vec[T]``.

    One matmul against the memoized per-arity matrix for small ``n``,
    the standard per-axis hypercube sweep beyond
    :data:`MATRIX_MAX_DIMS`.
    """
    if n <= MATRIX_MAX_DIMS:
        return subset_transform_matrix(n, False) @ np.asarray(vec, dtype=np.float64)
    return _sweep(vec, n, sign=1.0, supersets=False)


def mobius_subsets(vec: np.ndarray, n: int) -> np.ndarray:
    """Möbius transform: ``out[S] = Σ_{T⊆S} (−1)^{|S|−|T|} vec[T]``.

    Inverse of :func:`zeta_subsets`.  Theorem 1's ``c_S`` coefficients
    are ``mobius_subsets(b)``.
    """
    if n <= MATRIX_MAX_DIMS:
        return subset_transform_matrix(n, True) @ np.asarray(vec, dtype=np.float64)
    return _sweep(vec, n, sign=-1.0, supersets=False)


def zeta_supersets(vec: np.ndarray, n: int) -> np.ndarray:
    """Superset-sum transform: ``out[S] = Σ_{T⊇S} vec[T]``."""
    if n <= MATRIX_MAX_DIMS:
        return subset_transform_matrix(n, False).T @ np.asarray(vec, dtype=np.float64)
    return _sweep(vec, n, sign=1.0, supersets=True)


def mobius_supersets(vec: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`zeta_supersets`:
    ``out[S] = Σ_{T⊇S} (−1)^{|T|−|S|} vec[T]``.

    This recovers the *exact-agreement* pair weights ``d_S`` from the
    *at-least-agreement* data moments ``y_S`` (``y = ζ⁺(d)``), the
    identity at the heart of Theorem 1's proof.
    """
    if n <= MATRIX_MAX_DIMS:
        return subset_transform_matrix(n, True).T @ np.asarray(vec, dtype=np.float64)
    return _sweep(vec, n, sign=-1.0, supersets=True)


def kappa(b: np.ndarray, s_mask: int, t_mask: int) -> float:
    """Unbiasing coefficient ``κ_{S,T} = Σ_{U⊆T} (−1)^{|T|−|U|} b_{S∪U}``.

    Defined for disjoint ``S`` and ``T ⊆ Sᶜ``.  The plug-in moment
    computed on a GUS sample satisfies
    ``E[Y_S] = Σ_{T⊆Sᶜ} κ_{S,T} · y_{S∪T}``, with ``κ_{S,∅} = b_S``;
    inverting that triangular system yields the unbiased ``Ŷ_S``.

    Note: the arXiv text prints the sign as ``(−1)^{|U|+|S|}``; the
    exponent must be ``|T|+|U|`` for Möbius inversion to hold (verified
    by exhaustive enumeration in the test suite).
    """
    if s_mask & t_mask:
        raise LatticeError("kappa requires disjoint S and T masks")
    total = 0.0
    t_size = popcount(t_mask)
    for u in iter_submasks(t_mask):
        sign = -1.0 if (t_size - popcount(u)) % 2 else 1.0
        total += sign * float(b[s_mask | u])
    return total
