"""Core of the reproduction: the GUS sampling algebra and estimator.

Layout:

* :mod:`repro.core.lattice`    — subset-lattice bitmask machinery;
* :mod:`repro.core.gus`        — ``G(a, b̄)`` parameter objects;
* :mod:`repro.core.algebra`    — join/union/compaction/composition maps;
* :mod:`repro.core.estimator`  — Theorem 1 estimation and unbiasing;
* :mod:`repro.core.confidence` — normal/Chebyshev intervals, quantiles;
* :mod:`repro.core.rewrite`    — plan → single-top-GUS transformation;
* :mod:`repro.core.soa`        — SOA-equivalence checking oracles;
* :mod:`repro.core.sbox`       — the end-to-end SBox estimator;
* :mod:`repro.core.subsample`  — Section 7 sub-sampled variance.
"""

from repro.core.algebra import (
    compact_gus,
    compose_gus,
    join_gus,
    lift_gus,
    union_gus,
)
from repro.core.confidence import ConfidenceInterval
from repro.core.estimator import Estimate, estimate_sum, exact_moments
from repro.core.gus import (
    GUSParams,
    bernoulli_gus,
    identity_gus,
    null_gus,
    single_relation_gus,
    without_replacement_gus,
)
from repro.core.lattice import SubsetLattice

__all__ = [
    "GUSParams",
    "SubsetLattice",
    "Estimate",
    "ConfidenceInterval",
    "bernoulli_gus",
    "without_replacement_gus",
    "single_relation_gus",
    "identity_gus",
    "null_gus",
    "join_gus",
    "compose_gus",
    "union_gus",
    "compact_gus",
    "lift_gus",
    "estimate_sum",
    "exact_moments",
]
