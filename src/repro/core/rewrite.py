"""SOA-equivalent plan rewriting (paper Section 4).

Given an executable plan containing sampling operators anywhere, this
module derives the SOA-equivalent plan in which **all** relational
operators form a subtree feeding a **single GUS quasi-operator** just
below the aggregate (the shape of Figures 2(c), 4(e) and 5(f)).  The
transformation never executes anything; it only composes GUS
parameters:

* ``TABLESAMPLE`` over a base table becomes that method's ``G(a, b̄)``
  (Section 4.2 instantiation);
* selections and projections pass GUS through (Proposition 5);
* joins and cross products merge the two sides' GUS (Proposition 6),
  with unsampled inputs contributing the identity GUS (Proposition 4);
* unions/intersections of two samples *of the same expression* use
  Propositions 7/8;
* stacked samplers (``LineageSample``, ``GUSNode``) compact onto their
  input (Proposition 8).

The result is the pair ``(clean relational plan, top GUS params)`` —
everything Theorem 1 needs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.algebra import compact_gus, join_gus, lift_gus, union_gus
from repro.core.gus import GUSParams, identity_gus
from repro.errors import PlanError
from repro.relational import plan as p


@dataclass(frozen=True)
class RewriteResult:
    """The SOA-equivalent form: one GUS over a sampling-free subtree."""

    clean_plan: p.PlanNode
    params: GUSParams

    @property
    def analysis_plan(self) -> p.GUSNode:
        """The quasi-operator plan, for display/EXPLAIN purposes."""
        return p.GUSNode(self.clean_plan, self.params)

    @property
    def is_sampled(self) -> bool:
        """False when the plan contained no sampling at all."""
        return self.params.project_out_inactive().lattice.n > 0 or (
            self.params.a < 1.0
        )


def rewrite_to_top_gus(
    plan: p.PlanNode, table_sizes: Mapping[str, int]
) -> RewriteResult:
    """Push every sampling operator up into a single top GUS.

    ``table_sizes`` supplies base-table cardinalities, which
    without-replacement methods need to instantiate their GUS
    (``a = n/N``).  Aggregates are handled by the SBox, not here.
    """
    if isinstance(plan, p.Aggregate):
        raise PlanError(
            "rewrite the aggregate's input; the SBox owns the aggregate"
        )
    return _rewrite(plan, table_sizes)


def _rewrite(
    node: p.PlanNode, sizes: Mapping[str, int]
) -> RewriteResult:
    if isinstance(node, p.Scan):
        return RewriteResult(node, identity_gus([node.table_name]))

    if isinstance(node, p.TableSample):
        relation = node.child.table_name
        if relation not in sizes:
            raise PlanError(f"unknown base table {relation!r}")
        params = node.method.gus(relation, sizes[relation])
        return RewriteResult(node.child, params)

    if isinstance(node, p.LineageSample):
        child = _rewrite(node.child, sizes)
        sub = lift_gus(node.sampler.gus(), child.params.schema)
        return RewriteResult(child.clean_plan, compact_gus(sub, child.params))

    if isinstance(node, p.GUSNode):
        child = _rewrite(node.child, sizes)
        schema = child.params.schema | node.params.schema
        return RewriteResult(
            child.clean_plan,
            compact_gus(
                lift_gus(node.params, schema),
                lift_gus(child.params, schema),
            ),
        )

    if isinstance(node, p.Select):
        child = _rewrite(node.child, sizes)
        return RewriteResult(
            p.Select(child.clean_plan, node.predicate), child.params
        )

    if isinstance(node, p.Project):
        child = _rewrite(node.child, sizes)
        return RewriteResult(
            p.Project(child.clean_plan, node.outputs), child.params
        )

    if isinstance(node, p.Join):
        left = _rewrite(node.left, sizes)
        right = _rewrite(node.right, sizes)
        return RewriteResult(
            p.Join(
                left.clean_plan,
                right.clean_plan,
                node.left_keys,
                node.right_keys,
            ),
            join_gus(left.params, right.params),
        )

    if isinstance(node, p.CrossProduct):
        left = _rewrite(node.left, sizes)
        right = _rewrite(node.right, sizes)
        return RewriteResult(
            p.CrossProduct(left.clean_plan, right.clean_plan),
            join_gus(left.params, right.params),
        )

    if isinstance(node, (p.Union, p.Intersect)):
        left = _rewrite(node.left, sizes)
        right = _rewrite(node.right, sizes)
        if left.clean_plan.fingerprint() != right.clean_plan.fingerprint():
            raise PlanError(
                "the union/intersection rules (Props 7/8) require two "
                "samples of the *same* expression; the operands differ "
                "once sampling is removed"
            )
        combine = union_gus if isinstance(node, p.Union) else compact_gus
        return RewriteResult(
            left.clean_plan, combine(left.params, right.params)
        )

    raise PlanError(f"cannot rewrite {type(node).__name__}")
