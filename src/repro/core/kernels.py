"""Hot-path kernels: lineage hashing, key packing, group reduction.

Profiling the chunked pipeline keeps naming three kernels: the
lineage-hash Bernoulli draw, multi-key join factorization, and the
per-group weight reduction behind every moment computation.  They live
here in two interchangeable forms:

* **Vectorized numpy** (always available) — branch-free SplitMix64 over
  uint64 arrays, radix-packed multi-key sort, ``np.bincount`` group
  sums.
* **Numba-compiled** (opt-in via ``REPRO_JIT=1``, used only when numba
  imports) — the same arithmetic as explicit loops.  The JIT variants
  are *bit-identical* by construction: SplitMix64 is exact integer
  arithmetic, and the JIT group-sum accumulates in the same
  row-major order as ``np.bincount``, so float addition order (and
  therefore every estimate, variance, and CI downstream) is unchanged.
  When ``REPRO_JIT`` is unset or numba is missing, the numpy forms run
  and :func:`jit_active` reports ``False`` — no hard dependency.

The per-row ``hashlib.blake2b`` reference implementation is kept for
the committed micro-benchmark (``benchmarks/bench_colstore.py``): it is
what a naive cryptographic-hash draw costs, and what SplitMix64 is
measured against.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Sequence

import numpy as np

__all__ = [
    "jit_active",
    "hash01",
    "hash01_blake2b",
    "pack_columns",
    "sorted_boundaries",
    "group_sums",
]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_INV_2_64 = 1.0 / float(2**64)


def _jit_requested() -> bool:
    return os.environ.get("REPRO_JIT", "") not in ("", "0")


_numba = None
if _jit_requested():  # pragma: no cover - numba optional
    try:
        import numba as _numba
    except ImportError:
        _numba = None


def jit_active() -> bool:
    """Whether the numba-compiled kernel variants are in use."""
    return _numba is not None


# -- lineage hash ----------------------------------------------------------


def _finalize(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: two xor-shift-multiply rounds."""
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def _seed_mix(seed: int) -> np.uint64:
    with np.errstate(over="ignore"):
        return _finalize(np.uint64(seed % (2**64)) * _GAMMA + _GAMMA)


def hash01(seed: int, ids: np.ndarray) -> np.ndarray:
    """Map ``(seed, id)`` pairs to deterministic uniforms in ``[0, 1)``.

    The seed is finalized *before* being combined with the id stream:
    a plain additive combination would make ``hash01(s, i)`` a function
    of ``s + i`` only, perfectly correlating filters with nearby seeds
    at shifted ids — a real bias source for multi-stream sampling.
    """
    ids_u64 = np.asarray(ids, dtype=np.uint64)
    seed_mix = _seed_mix(seed)
    if _numba is not None:  # pragma: no cover - numba optional
        return _hash01_jit()(seed_mix, ids_u64)
    with np.errstate(over="ignore"):
        z = _finalize(seed_mix ^ (ids_u64 * _GAMMA))
    return z.astype(np.float64) * _INV_2_64


def hash01_blake2b(seed: int, ids: np.ndarray) -> np.ndarray:
    """Per-row blake2b reference draw (micro-benchmark baseline only).

    One 8-byte digest per row through :mod:`hashlib` — cryptographic
    strength the sampler does not need, at per-row Python cost the hot
    path cannot afford.  Kept so the committed benchmark measures the
    SplitMix64 kernel against a real alternative.
    """
    ids_u64 = np.asarray(ids, dtype=np.uint64)
    out = np.empty(ids_u64.shape[0], dtype=np.float64)
    prefix = int(seed % (2**64)).to_bytes(8, "little")
    for i, value in enumerate(ids_u64.tolist()):
        digest = hashlib.blake2b(
            prefix + value.to_bytes(8, "little"), digest_size=8
        ).digest()
        out[i] = int.from_bytes(digest, "little") * _INV_2_64
    return out


_HASH01_JIT = None


def _hash01_jit():  # pragma: no cover - numba optional
    global _HASH01_JIT
    if _HASH01_JIT is None:
        gamma = np.uint64(_GAMMA)
        mix1 = np.uint64(_MIX1)
        mix2 = np.uint64(_MIX2)
        inv = _INV_2_64

        @_numba.njit(cache=True)
        def kernel(seed_mix, ids):
            out = np.empty(ids.shape[0], dtype=np.float64)
            for i in range(ids.shape[0]):
                z = seed_mix ^ (ids[i] * gamma)
                z = (z ^ (z >> np.uint64(30))) * mix1
                z = (z ^ (z >> np.uint64(27))) * mix2
                z = z ^ (z >> np.uint64(31))
                out[i] = z * inv
            return out

        _HASH01_JIT = kernel
    return _HASH01_JIT


# -- multi-key factorization ----------------------------------------------


def pack_columns(
    columns: Sequence[np.ndarray], n_rows: int
) -> np.ndarray | None:
    """Pack integer key columns into one int64 key, order-preserving.

    The fused multi-key factorization kernel: the packed key reproduces
    ``np.lexsort``'s ordering exactly (last column primary, so it
    occupies the most significant bits); sorting one int64 array uses
    numpy's radix path and is several times faster than a multi-column
    lexsort.  Returns ``None`` when a column is non-integer or the
    combined value ranges exceed 63 bits — callers fall back to
    lexsort.
    """
    parts: list[tuple[np.ndarray, int, int]] = []
    total_bits = 0
    for col in columns:
        col = np.asarray(col)
        if not np.issubdtype(col.dtype, np.integer):
            return None
        lo = int(col.min())
        hi = int(col.max())
        bits = (hi - lo).bit_length()
        parts.append((col, lo, bits))
        total_bits += bits
        if total_bits > 63:
            return None
    packed = np.zeros(n_rows, dtype=np.int64)
    shift = 0
    for col, lo, bits in parts:
        if bits:
            # Offsets are computed modulo 2^64: casting any int64/uint64
            # value to uint64 and subtracting the (wrapped) minimum
            # yields the true offset for spans up to 63 bits, without
            # the int64 overflow a direct `col - lo` would hit on
            # uint64 ids >= 2^63 or ranges crossing 2^62.
            wrapped_lo = np.uint64(lo % (1 << 64))
            with np.errstate(over="ignore"):
                offset = (col.astype(np.uint64) - wrapped_lo).astype(
                    np.int64
                )
            packed |= offset << shift
            shift += bits
    return packed


def sorted_boundaries(
    columns: Sequence[np.ndarray], n_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort rows by key and mark where a new key starts.

    Returns ``(order, boundary)``: ``order`` sorts the rows by key and
    ``boundary[i]`` is True when sorted row ``i`` opens a new group.
    The single sort here is the workhorse behind both ``group_ids``
    and ``group_reduce``; integer keys take the packed single-array
    radix path, everything else the general lexsort.
    """
    packed = pack_columns(columns, n_rows)
    if packed is not None:
        order = np.argsort(packed, kind="stable")
        sorted_packed = packed[order]
        boundary = np.empty(n_rows, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_packed[1:] != sorted_packed[:-1]
        return order, boundary
    order = np.lexsort(tuple(columns))
    boundary = np.zeros(n_rows, dtype=bool)
    boundary[0] = True
    for col in columns:
        sorted_col = col[order]
        boundary[1:] |= sorted_col[1:] != sorted_col[:-1]
    return order, boundary


# -- group reduction -------------------------------------------------------


def group_sums(
    gids_sorted: np.ndarray, weights_sorted: np.ndarray, n_groups: int
) -> np.ndarray:
    """Single-pass per-group weight sums over pre-sorted dense ids.

    The numpy form is ``np.bincount``; the JIT form is the equivalent
    sequential loop.  Both accumulate in row order over the sorted
    input, so the float addition order — and with it the bit pattern of
    every downstream moment — is identical.
    """
    if _numba is not None:  # pragma: no cover - numba optional
        return _group_sums_jit()(
            np.asarray(gids_sorted, dtype=np.int64),
            np.asarray(weights_sorted, dtype=np.float64),
            n_groups,
        )
    return np.bincount(
        gids_sorted, weights=weights_sorted, minlength=n_groups
    )


_GROUP_SUMS_JIT = None


def _group_sums_jit():  # pragma: no cover - numba optional
    global _GROUP_SUMS_JIT
    if _GROUP_SUMS_JIT is None:

        @_numba.njit(cache=True)
        def kernel(gids_sorted, weights_sorted, n_groups):
            out = np.zeros(n_groups, dtype=np.float64)
            for i in range(gids_sorted.shape[0]):
                out[gids_sorted[i]] += weights_sorted[i]
            return out

        _GROUP_SUMS_JIT = kernel
    return _GROUP_SUMS_JIT
