"""The SBox: the paper's Section 6 statistical estimator component.

The SBox sits between the query plan and the aggregate.  It receives
exactly what Section 6 says it needs — the result tuples of the sampled
plan, their lineage, and the plan itself — and produces, per aggregate:

1. the single top GUS of the SOA-equivalent plan (Section 6.1, via the
   rewriter);
2. unbiased ``Ŷ_S`` estimates from the sample, or from a Section 7
   sub-sample when a :class:`~repro.core.subsample.SubsampleSpec` is
   given (Section 6.3);
3. the point estimate, variance, and confidence-interval /
   ``QUANTILE`` outputs (Section 6.4).

It is deliberately a self-contained "black box": nothing in it touches
the execution engine beyond consuming its output table.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.core.estimator import (
    Estimate,
    GroupedEstimates,
    estimate_from_moments,
    estimate_sum,
    estimate_sums_grouped_multi,
    group_firsts,
    group_ids,
    grouped_theorem1_variance,
    unbiased_y_terms_grouped,
)
from repro.core.gus import GUSParams
from repro.core.rewrite import RewriteResult, rewrite_to_top_gus
from repro.core.subsample import SubsampleSpec, subsampled_estimate
from repro.errors import EstimationError, PlanError
from repro.obs.metrics import observe_phase_seconds
from repro.obs.trace import (
    env_trace_enabled,
    get_tracer,
    maybe_span,
    start_trace,
)
from repro.relational.aggregates import aggregate_input_vector
from repro.relational.plan import Aggregate, AggSpec, GroupAggregate, PlanNode
from repro.relational.table import Table
from repro.stats.delta import (
    covariance_estimate,
    ratio_estimate,
    ratio_estimates_grouped,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Trace
    from repro.store import ReuseInfo, SynopsisCatalog


def apply_having_grouped(
    having,
    keys: dict[str, np.ndarray],
    values: dict[str, np.ndarray],
    estimates: dict[str, "GroupedEstimates"],
) -> tuple[dict, dict, dict]:
    """Filter grouped output through a HAVING predicate, NaN-safely.

    Empty and singleton groups carry ``NaN`` estimates (and CI bounds)
    by design, so a raw comparison would decide their fate via IEEE
    NaN truthiness — ``NaN > x`` is False, but ``NOT (NaN > x)`` is
    True, which silently *kept* uninformative groups under negated
    predicates.  Policy: a group whose HAVING predicate references an
    aggregate whose estimate is ``NaN`` is dropped, never admitted by
    NaN semantics.  Key columns are exempt — NaN keys are data, and
    the exact engine keeps them consistently.
    """
    probe = Table(None, {**keys, **values})
    mask = np.asarray(having.eval(probe), dtype=bool)
    for name in having.columns_used():
        col = values.get(name)
        if col is not None and np.issubdtype(col.dtype, np.floating):
            mask &= ~np.isnan(col)
    picked = np.flatnonzero(mask)
    return (
        {k: col[picked] for k, col in keys.items()},
        {a: v[picked] for a, v in values.items()},
        {a: e.take(picked) for a, e in estimates.items()},
    )


@dataclass(frozen=True)
class QueryResult:
    """Everything an approximate aggregate query returns.

    ``values`` holds the per-alias answer the query's SELECT list asked
    for (point estimate, or the requested quantile for ``QUANTILE``
    columns).  ``estimates`` carries the full estimator objects so the
    caller can derive any interval afterwards; ``gus`` is the top
    quasi-operator of the SOA-equivalent plan; ``sample`` is the
    pre-aggregation result sample (with lineage) the estimates came
    from — pruned to the aggregate-relevant columns on the chunked
    path, and ``None`` when the caller asked the partition-merge
    estimator not to keep it (``keep_sample=False``: the estimate then
    never materializes the sample at all, only merged moment state).
    """

    values: dict[str, float]
    estimates: dict[str, Estimate]
    gus: GUSParams
    sample: Table | None
    rewrite: RewriteResult = field(repr=False)
    plan: Aggregate | None = field(default=None, repr=False)
    reuse: "ReuseInfo | None" = field(default=None, repr=False)
    trace: "Trace | None" = field(default=None, repr=False, compare=False)

    def __getitem__(self, alias: str) -> float:
        return self.values[alias]

    def summary(self, level: float = 0.95, method: str = "normal") -> str:
        """Human-readable per-aggregate report."""
        lines = []
        for alias, est in self.estimates.items():
            ci = est.ci(level, method)
            lines.append(
                f"{alias}: {est.value:.6g}  ±{(ci.hi - ci.lo) / 2:.4g} "
                f"({level:.0%} {method}; n={est.n_sample}"
                + (", variance clamped" if est.clamped else "")
                + ")"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class GroupedQueryResult:
    """Everything an approximate GROUP BY query returns.

    ``keys`` holds one array per GROUP BY column, parallel over the
    realized groups (in sorted key order); ``values`` the per-alias
    answer arrays; ``estimates`` the full per-group estimator bundles
    so any interval can be derived afterwards.  Only groups the sample
    *observed* appear — a sample carries no information about groups it
    missed, so their absence is the honest output (compare against
    ground truth accordingly).  When the plan carried a HAVING clause
    it was applied to the *estimated* values, so group membership in
    the output is itself approximate.
    """

    keys: dict[str, np.ndarray]
    values: dict[str, np.ndarray]
    estimates: dict[str, GroupedEstimates]
    gus: GUSParams
    sample: Table | None
    rewrite: RewriteResult = field(repr=False)
    plan: GroupAggregate | None = field(default=None, repr=False)
    reuse: "ReuseInfo | None" = field(default=None, repr=False)
    trace: "Trace | None" = field(default=None, repr=False, compare=False)

    def __getitem__(self, alias: str) -> np.ndarray:
        return self.values[alias]

    @property
    def n_groups(self) -> int:
        first = next(iter(self.keys.values()))
        return int(first.shape[0])

    def __len__(self) -> int:
        return self.n_groups

    def group_rows(self) -> list[tuple]:
        """The group key tuples, in output order."""
        names = list(self.keys)
        return [
            tuple(self.keys[n][g] for n in names)
            for g in range(self.n_groups)
        ]

    def table(
        self, level: float | None = None, method: str = "normal"
    ) -> Table:
        """Materialize as a result table, one row per group.

        With ``level`` given, each aggregate column is flanked by
        ``<alias>_lo`` / ``<alias>_hi`` interval-bound columns
        (``NaN`` for singleton groups — see
        :class:`~repro.core.estimator.GroupedEstimates`).
        """
        columns: dict[str, np.ndarray] = dict(self.keys)
        for alias, vals in self.values.items():
            columns[alias] = vals
            if level is not None:
                lo, hi = self.estimates[alias].ci_bounds(level, method)
                columns[f"{alias}_lo"] = lo
                columns[f"{alias}_hi"] = hi
        return Table(None, columns)

    def summary(self, level: float = 0.95, method: str = "normal") -> str:
        """Human-readable per-group report."""
        lines = []
        key_names = list(self.keys)
        bounds = {
            alias: est.ci_bounds(level, method)
            for alias, est in self.estimates.items()
        }
        for g in range(self.n_groups):
            key_text = ", ".join(
                f"{n}={self.keys[n][g]}" for n in key_names
            )
            parts = []
            for alias, vals in self.values.items():
                lo, hi = bounds[alias][0][g], bounds[alias][1][g]
                parts.append(
                    f"{alias}: {vals[g]:.6g} [{lo:.6g}, {hi:.6g}]"
                )
            lines.append(f"({key_text})  " + "  ".join(parts))
        return "\n".join(lines)


def _vector_plan(
    specs: "tuple[AggSpec, ...] | list[AggSpec]",
) -> tuple[list[tuple], list[str], list[tuple[AggSpec, tuple[int, ...]]]]:
    """Weight-vector recipes every aggregate of a query needs.

    All aggregates share one compaction, so their per-row weight
    vectors are planned together: the all-ones COUNT vector is shared
    by ``COUNT(*)`` specs and every AVG denominator; each AVG adds its
    numerator and the ``f+1`` polarization vector for the covariance.
    Returns ``(recipes, labels, spec_inputs)`` where a recipe is
    ``("ones",)``, ``("expr", expr)`` or ``("plus1", base_index)`` and
    ``spec_inputs`` maps each spec to its vector indices.
    """
    recipes: list[tuple] = []
    labels: list[str] = []
    ones_index: int | None = None

    def add(recipe: tuple, label: str) -> int:
        recipes.append(recipe)
        labels.append(label)
        return len(recipes) - 1

    spec_inputs: list[tuple[AggSpec, tuple[int, ...]]] = []
    for spec in specs:
        if spec.kind == "avg":
            assert spec.expr is not None
            f_index = add(("expr", spec.expr), "SUM")
            if ones_index is None:
                ones_index = add(("ones",), "COUNT")
            spec_inputs.append(
                (spec, (f_index, ones_index, add(("plus1", f_index), "SUM")))
            )
        elif spec.kind == "count":
            if ones_index is None:
                ones_index = add(("ones",), "COUNT")
            spec_inputs.append((spec, (ones_index,)))
        else:
            assert spec.expr is not None
            spec_inputs.append(
                (spec, (add(("expr", spec.expr), spec.kind.upper()),))
            )
    return recipes, labels, spec_inputs


def _eval_vectors(recipes: list[tuple], table: Table) -> list[np.ndarray]:
    """Evaluate the planned weight vectors over one batch of rows."""
    out: list[np.ndarray] = []
    for recipe in recipes:
        if recipe[0] == "ones":
            out.append(np.ones(table.n_rows, dtype=np.float64))
        elif recipe[0] == "expr":
            out.append(np.asarray(recipe[1].eval(table), dtype=np.float64))
        else:  # ("plus1", base_index) — the AVG polarization vector
            out.append(out[recipe[1]] + 1.0)
    return out


class _ChunkFold:
    """Picklable per-chunk fold: chunk → (moment contribution, sample?).

    A module-level ``__slots__`` class (not a closure) so process-mode
    schedulers can broadcast it to workers; only the compact bundle —
    and, when the caller keeps the sample, the chunk — crosses back.
    """

    __slots__ = ("recipes", "lattice", "grouped", "keys", "keep_sample")

    def __init__(self, recipes, lattice, grouped, keys, keep_sample) -> None:
        self.recipes = recipes
        self.lattice = lattice
        self.grouped = grouped
        self.keys = tuple(keys)
        self.keep_sample = keep_sample

    def __call__(self, chunk: Table):
        from repro.stream.sketch import GroupedMomentBundle, MomentSketchBundle

        fs = _eval_vectors(self.recipes, chunk)
        if self.grouped:
            contrib: object = GroupedMomentBundle(
                self.lattice, len(self.keys), len(self.recipes)
            )
            contrib.update(
                fs, chunk.lineage, [chunk.column(k) for k in self.keys]
            )
        else:
            contrib = MomentSketchBundle(self.lattice, len(self.recipes))
            contrib.update(fs, chunk.lineage)
        return contrib, (chunk if self.keep_sample else None)


def _needed_columns(plan: "Aggregate | GroupAggregate") -> frozenset[str]:
    """Data columns the estimator reads from the sample."""
    cols: frozenset[str] = frozenset()
    for spec in plan.specs:
        if spec.expr is not None:
            cols |= spec.expr.columns_used()
    if isinstance(plan, GroupAggregate):
        cols |= frozenset(plan.keys)
    return cols


class SBox:
    """The statistical estimator module (paper Figure in Section 6).

    ``catalog`` maps table names to :class:`Table`; it supplies both
    execution and the base-table cardinalities the rewriter needs.
    ``synopses`` optionally plugs in a
    :class:`~repro.store.SynopsisCatalog`: :meth:`run` then serves
    queries from stored samples whenever the sampling algebra proves a
    stored synopsis subsumes the query's plan, and stores fresh
    samples on every miss.
    """

    def __init__(
        self,
        catalog: Mapping[str, Table],
        rng: np.random.Generator | None = None,
        *,
        synopses: "SynopsisCatalog | None" = None,
    ) -> None:
        # Version stamps are read BEFORE the table snapshot is taken:
        # if a mutation lands in between, samples executed against the
        # (newer) snapshot carry an older stamp and are conservatively
        # discarded at put() — never the reverse, which would let a
        # stale sample outlive its table's invalidation.
        self._version_stamps = (
            synopses.version_stamps(list(catalog))
            if synopses is not None
            else {}
        )
        self.catalog = dict(catalog)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.synopses = synopses

    # -- pipeline ----------------------------------------------------------

    def analyze(self, plan: PlanNode) -> RewriteResult:
        """Section 6.1: compute the SOA-equivalent single-GUS form."""
        sizes = {name: t.n_rows for name, t in self.catalog.items()}
        return rewrite_to_top_gus(plan, sizes)

    def run(
        self,
        plan: Aggregate | GroupAggregate,
        *,
        subsample: SubsampleSpec | None = None,
        rng: np.random.Generator | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        rng_mode: str = "compat",
        keep_sample: bool = True,
    ) -> "QueryResult | GroupedQueryResult":
        """Execute the sampled plan and estimate every aggregate.

        A :class:`~repro.relational.plan.GroupAggregate` plan routes to
        the vectorized grouped estimator and returns a
        :class:`GroupedQueryResult`.

        With ``workers`` set (any value >= 1) the query runs on the
        partition-parallel chunked pipeline: the plan streams chunk by
        chunk, every partition's rows fold straight into mergeable
        moment state, and the estimate comes from the merged state —
        the full result sample is only materialized (column-pruned) to
        populate ``result.sample``, and not at all under
        ``keep_sample=False``.  Results are bit-for-bit identical for
        any worker count, and for any row partitioning whenever each
        active lineage key's rows stay within one chunk (tuple-level
        sampling always; block sampling via boundary alignment); keys
        replicated across chunks by join fanout merge partial sums, so
        only there can a different chunking move the last float ulp.

        With ``REPRO_TRACE=1`` in the environment (and no trace already
        active) the run is traced and the span tree attached to
        ``result.trace``; tracing never touches the RNG or fold order,
        so the numbers stay bit-identical either way.
        """
        if not isinstance(plan, (Aggregate, GroupAggregate)):
            raise PlanError(
                "SBox.run expects an Aggregate or GroupAggregate plan"
            )
        if get_tracer() is None and env_trace_enabled():
            with start_trace("sbox.run") as tracer:
                result = self._run(
                    plan,
                    subsample=subsample,
                    rng=rng,
                    workers=workers,
                    chunk_size=chunk_size,
                    rng_mode=rng_mode,
                    keep_sample=keep_sample,
                )
            return replace(result, trace=tracer.finish_trace())
        return self._run(
            plan,
            subsample=subsample,
            rng=rng,
            workers=workers,
            chunk_size=chunk_size,
            rng_mode=rng_mode,
            keep_sample=keep_sample,
        )

    def _run(
        self,
        plan: Aggregate | GroupAggregate,
        *,
        subsample: SubsampleSpec | None,
        rng: np.random.Generator | None,
        workers: int | None,
        chunk_size: int | None,
        rng_mode: str,
        keep_sample: bool,
    ) -> "QueryResult | GroupedQueryResult":
        from repro.relational.executor import Executor

        tracer = get_tracer()
        with maybe_span(tracer, "analyze"):
            rewrite = self.analyze(plan.child)
        if (
            self.synopses is not None
            and subsample is None
            and keep_sample
            and rewrite.is_sampled
        ):
            served = self._run_via_store(
                plan,
                rewrite,
                rng=rng,
                workers=workers,
                chunk_size=chunk_size,
                rng_mode=rng_mode,
            )
            if served is not None:
                return served
        if workers is not None and workers >= 1:
            return self._run_chunked(
                plan,
                rewrite,
                rng=rng,
                workers=int(workers),
                chunk_size=chunk_size,
                rng_mode=rng_mode,
                keep_sample=keep_sample,
                subsample=subsample,
            )
        executor = Executor(self.catalog, rng if rng is not None else self.rng)
        t0 = perf_counter()
        with maybe_span(tracer, "draw") as sp:
            sample = executor.execute(plan.child)
            sp.attrs["rows"] = sample.n_rows
        observe_phase_seconds("draw", perf_counter() - t0)
        if isinstance(plan, GroupAggregate):
            return self.estimate_from_sample_grouped(
                plan, sample, rewrite, subsample=subsample
            )
        return self.estimate_from_sample(
            plan, sample, rewrite, subsample=subsample
        )

    def _run_via_store(
        self,
        plan: Aggregate | GroupAggregate,
        rewrite: RewriteResult,
        *,
        rng: np.random.Generator | None,
        workers: int | None,
        chunk_size: int | None,
        rng_mode: str,
    ) -> "QueryResult | GroupedQueryResult | None":
        """Serve from (or populate) the synopsis catalog.

        Returns ``None`` when the plan lies outside the canonical
        reuse algebra — the caller then runs the regular path.  On a
        catalog hit the sample and GUS coefficients come straight from
        the matcher (exact reuse / predicate pushdown / residual
        thinning); on a miss the child executes once with *all*
        columns, is stored, and the estimate is computed from it.
        """
        from repro.store import ReuseMatcher, canonicalize, materialize
        from repro.store.fingerprint import draw_token_of

        tracer = get_tracer()
        t0 = perf_counter()
        with maybe_span(tracer, "store.probe", kind="store") as sp:
            canon = canonicalize(
                plan.child,
                {name: t.n_rows for name, t in self.catalog.items()},
                draw_token=draw_token_of(
                    rng if rng is not None else self.rng
                ),
            )
            if canon is None:
                decision = None
                sp.attrs["outcome"] = "uncanonical"
            else:
                needed = _needed_columns(plan)
                for pred in canon.predicates:
                    needed |= pred.columns_used()
                matcher = ReuseMatcher(self.synopses)
                decision = matcher.match(canon, required_columns=needed)
                sp.attrs["outcome"] = "miss" if decision is None else "hit"
                if decision is not None:
                    sp.attrs["mode"] = decision.kind
        observe_phase_seconds("catalog_probe", perf_counter() - t0)
        if canon is None:
            return None
        if decision is not None:
            t1 = perf_counter()
            with maybe_span(tracer, "store.serve", kind="store") as sp:
                sample, params, clean, info = materialize(decision)
                sp.attrs["mode"] = info.kind
                sp.attrs["entry"] = info.entry_id
                sp.attrs["rows_stored"] = info.stored_rows
                sp.attrs["rows_served"] = info.served_rows
                if info.thin_rates:
                    sp.attrs["thinned_relations"] = len(info.thin_rates)
                if info.residual_predicates:
                    sp.attrs["residual_predicates"] = (
                        info.residual_predicates
                    )
            observe_phase_seconds("residual", perf_counter() - t1)
            served = RewriteResult(clean, params)
            if isinstance(plan, GroupAggregate):
                return self.estimate_from_sample_grouped(
                    plan, sample, served, reuse=info
                )
            return self.estimate_from_sample(plan, sample, served, reuse=info)
        # Miss: execute the sampled child once, full-width, and store it.
        t2 = perf_counter()
        with maybe_span(tracer, "draw") as sp:
            if workers is not None and workers >= 1:
                from repro.relational.partition import DEFAULT_CHUNK_ROWS
                from repro.relational.pipeline import ChunkedExecutor

                sample = ChunkedExecutor(
                    self.catalog,
                    rng if rng is not None else self.rng,
                    workers=int(workers),
                    chunk_size=(
                        chunk_size
                        if chunk_size is not None
                        else DEFAULT_CHUNK_ROWS
                    ),
                    rng_mode=rng_mode,
                ).execute(plan.child)
            else:
                from repro.relational.executor import Executor

                sample = Executor(
                    self.catalog, rng if rng is not None else self.rng
                ).execute(plan.child)
            sp.attrs["rows"] = sample.n_rows
        observe_phase_seconds("draw", perf_counter() - t2)
        with maybe_span(tracer, "store.put", kind="store") as sp:
            stored = self.synopses.put(
                canon,
                sample,
                rewrite.params,
                rewrite.clean_plan,
                versions=self._version_stamps,
            )
            sp.attrs["stored"] = stored is not None
        if isinstance(plan, GroupAggregate):
            return self.estimate_from_sample_grouped(plan, sample, rewrite)
        return self.estimate_from_sample(plan, sample, rewrite)

    def _run_chunked(
        self,
        plan: Aggregate | GroupAggregate,
        rewrite: RewriteResult,
        *,
        rng: np.random.Generator | None,
        workers: int,
        chunk_size: int | None,
        rng_mode: str,
        keep_sample: bool,
        subsample: SubsampleSpec | None,
    ) -> "QueryResult | GroupedQueryResult":
        """Partition-parallel estimation: fold chunks, merge sketches."""
        from repro.relational.partition import DEFAULT_CHUNK_ROWS
        from repro.relational.pipeline import ChunkedExecutor, concat_tables

        grouped = isinstance(plan, GroupAggregate)
        if subsample is not None and grouped:
            raise EstimationError(
                "sub-sampled variance estimation is not supported for "
                "GROUP BY queries; the grouped moment pass is already "
                "one compaction over the sample"
            )
        executor = ChunkedExecutor(
            self.catalog,
            rng if rng is not None else self.rng,
            workers=workers,
            chunk_size=(
                chunk_size if chunk_size is not None else DEFAULT_CHUNK_ROWS
            ),
            rng_mode=rng_mode,
        )
        tracer = get_tracer()
        needed = _needed_columns(plan)
        if subsample is not None:
            # Section 7 sub-sampling needs the raw sample rows; stream
            # the (pruned) chunks and estimate off the concatenation.
            t0 = perf_counter()
            with maybe_span(tracer, "draw") as sp:
                sample = concat_tables(
                    list(executor.iter_chunks(plan.child, columns=needed))
                )
                sp.attrs["rows"] = sample.n_rows
            observe_phase_seconds("draw", perf_counter() - t0)
            assert isinstance(plan, Aggregate)
            return self.estimate_from_sample(
                plan, sample, rewrite, subsample=subsample
            )
        params = rewrite.params
        if params.a <= 0.0:
            raise EstimationError(
                "cannot estimate from a = 0 (null sampling)"
            )
        pruned = params.project_out_inactive()
        recipes, labels, spec_inputs = _vector_plan(plan.specs)
        keys = plan.keys if grouped else ()
        per_chunk = _ChunkFold(
            recipes, pruned.lattice, grouped, keys, keep_sample
        )
        merged = None
        kept: list[Table] = []
        merge_seconds = 0.0
        t0 = perf_counter()
        with maybe_span(tracer, "draw") as sp:
            for contrib, chunk in executor.map_chunks(
                plan.child, per_chunk, columns=needed
            ):
                if merged is None:
                    merged = contrib
                else:
                    m0 = perf_counter()
                    merged = merged.merge(contrib)
                    merge_seconds += perf_counter() - m0
                if chunk is not None:
                    kept.append(chunk)
            assert merged is not None  # the pipeline always emits >= 1 chunk
            sp.attrs["rows"] = merged.n_rows
            sp.attrs["merge_ns"] = int(merge_seconds * 1e9)
        observe_phase_seconds(
            "draw", perf_counter() - t0 - merge_seconds
        )
        observe_phase_seconds("merge", merge_seconds)
        sample = concat_tables(kept) if keep_sample else None
        if grouped:
            return self._finish_grouped(
                plan, rewrite, merged, labels, spec_inputs, sample
            )
        return self._finish_ungrouped(
            plan, rewrite, merged, labels, spec_inputs, sample
        )

    def _finish_ungrouped(
        self,
        plan: Aggregate,
        rewrite: RewriteResult,
        bundle,
        labels: list[str],
        spec_inputs: list[tuple[AggSpec, tuple[int, ...]]],
        sample: Table | None,
    ) -> "QueryResult":
        """Estimates from merged ungrouped moment state."""
        params = rewrite.params
        pruned = params.project_out_inactive()
        tracer = get_tracer()
        t0 = perf_counter()
        with maybe_span(tracer, "estimate") as span:
            span.attrs["rows"] = bundle.n_rows
            span.attrs["aggregates"] = len(spec_inputs)
            moments = bundle.moments()
            totals = bundle.totals()
            raw = [
                estimate_from_moments(
                    pruned,
                    moments[j],
                    totals[j],
                    bundle.n_rows,
                    label=labels[j],
                )
                for j in range(len(labels))
            ]
            estimates: dict[str, Estimate] = {}
            values: dict[str, float] = {}
            for spec, indices in spec_inputs:
                if spec.kind == "avg":
                    num, den, both = (raw[j] for j in indices)
                    # Polarization:
                    # Cov = (Var(f+1) − Var(f) − Var(1)) / 2.
                    cov = 0.5 * (
                        both.variance_raw
                        - num.variance_raw
                        - den.variance_raw
                    )
                    est = ratio_estimate(num, den, cov)
                else:
                    est = raw[indices[0]]
                estimates[spec.alias] = est
                values[spec.alias] = (
                    est.quantile(spec.quantile)
                    if spec.quantile is not None
                    else est.value
                )
        observe_phase_seconds("estimate", perf_counter() - t0)
        return QueryResult(
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
        )

    def _finish_grouped(
        self,
        plan: GroupAggregate,
        rewrite: RewriteResult,
        bundle,
        labels: list[str],
        spec_inputs: list[tuple[AggSpec, tuple[int, ...]]],
        sample: Table | None,
    ) -> "GroupedQueryResult":
        """Per-group estimates from merged grouped moment state."""
        params = rewrite.params
        pruned = params.project_out_inactive()
        tracer = get_tracer()
        t0 = perf_counter()
        with maybe_span(tracer, "estimate") as span:
            span.attrs["rows"] = bundle.n_rows
            span.attrs["aggregates"] = len(spec_inputs)
            group_key_cols, ys, totals, counts = bundle.moments()
            bundles: list[GroupedEstimates] = []
            for j, label in enumerate(labels):
                yhat = unbiased_y_terms_grouped(pruned, ys[j])
                var_raw = grouped_theorem1_variance(pruned, yhat)
                bundles.append(
                    GroupedEstimates(
                        values=totals[j] / params.a,
                        variance_raw=var_raw,
                        n_samples=counts,
                        label=label,
                        extras={
                            "a": params.a,
                            "active_dims": pruned.lattice.dims,
                        },
                    )
                )
            keys = {
                k: col for k, col in zip(plan.keys, group_key_cols)
            }
            estimates: dict[str, GroupedEstimates] = {}
            values: dict[str, np.ndarray] = {}
            for spec, indices in spec_inputs:
                if spec.kind == "avg":
                    num, den, both = (bundles[j] for j in indices)
                    cov = 0.5 * (
                        both.variance_raw
                        - num.variance_raw
                        - den.variance_raw
                    )
                    est = ratio_estimates_grouped(num, den, cov)
                else:
                    est = bundles[indices[0]]
                estimates[spec.alias] = est
                values[spec.alias] = (
                    est.quantile(spec.quantile)
                    if spec.quantile is not None
                    else est.values
                )
            if plan.having is not None:
                keys, values, estimates = apply_having_grouped(
                    plan.having, keys, values, estimates
                )
        observe_phase_seconds("estimate", perf_counter() - t0)
        return GroupedQueryResult(
            keys=keys,
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
        )

    def estimate_from_sample(
        self,
        plan: Aggregate,
        sample: Table,
        rewrite: RewriteResult | None = None,
        *,
        subsample: SubsampleSpec | None = None,
        reuse: "ReuseInfo | None" = None,
    ) -> QueryResult:
        """Estimate from an already-executed sample (the pure SBox API).

        This is the entry point a host database would call: it needs
        only the result tuples with lineage and the plan description.
        """
        if rewrite is None:
            rewrite = self.analyze(plan.child)
        params = rewrite.params
        estimates: dict[str, Estimate] = {}
        values: dict[str, float] = {}
        tracer = get_tracer()
        t0 = perf_counter()
        with maybe_span(tracer, "estimate") as sp:
            sp.attrs["rows"] = sample.n_rows
            sp.attrs["aggregates"] = len(plan.specs)
            with maybe_span(tracer, "estimate.group_reduce", kind="kernel"):
                for spec in plan.specs:
                    est = self._estimate_spec(
                        spec, params, sample, subsample
                    )
                    estimates[spec.alias] = est
                    values[spec.alias] = (
                        est.quantile(spec.quantile)
                        if spec.quantile is not None
                        else est.value
                    )
        observe_phase_seconds("estimate", perf_counter() - t0)
        return QueryResult(
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
            reuse=reuse,
        )

    def estimate_from_sample_grouped(
        self,
        plan: GroupAggregate,
        sample: Table,
        rewrite: RewriteResult | None = None,
        *,
        subsample: SubsampleSpec | None = None,
        reuse: "ReuseInfo | None" = None,
    ) -> GroupedQueryResult:
        """Per-group estimates from an already-executed sample.

        Group ids are assigned once from the GROUP BY columns of the
        sample (one lexsort); every aggregate then runs through the
        vectorized grouped moment machinery.  HAVING filters the
        estimated output.
        """
        if subsample is not None:
            raise EstimationError(
                "sub-sampled variance estimation is not supported for "
                "GROUP BY queries; the grouped moment pass is already "
                "one compaction over the sample"
            )
        if rewrite is None:
            rewrite = self.analyze(plan.child)
        params = rewrite.params
        tracer = get_tracer()
        t0 = perf_counter()
        with maybe_span(tracer, "estimate") as span:
            span.attrs["rows"] = sample.n_rows
            span.attrs["aggregates"] = len(plan.specs)
            key_cols = [sample.column(k) for k in plan.keys]
            gids, n_groups = group_ids(key_cols, sample.n_rows)
            first = group_firsts(gids, n_groups, sample.n_rows)
            keys = {k: col[first] for k, col in zip(plan.keys, key_cols)}
            # Every aggregate of the query shares one compaction and one
            # subgroup structure per lattice mask — the weight-vector
            # plan (shared with the partition-merge path) collects
            # everything needed and the batched pass estimates it all
            # at once.
            recipes, vector_labels, spec_inputs = _vector_plan(plan.specs)
            vectors = _eval_vectors(recipes, sample)
            with maybe_span(
                tracer, "estimate.group_reduce", kind="kernel"
            ):
                bundles = estimate_sums_grouped_multi(
                    params,
                    vectors,
                    sample.lineage,
                    gids,
                    n_groups,
                    labels=vector_labels,
                )
            estimates: dict[str, GroupedEstimates] = {}
            values: dict[str, np.ndarray] = {}
            for spec, indices in spec_inputs:
                if spec.kind == "avg":
                    num, den, both = (bundles[i] for i in indices)
                    # Polarization:
                    # Cov = (Var(f+1) − Var(f) − Var(1)) / 2.
                    cov = 0.5 * (
                        both.variance_raw
                        - num.variance_raw
                        - den.variance_raw
                    )
                    est = ratio_estimates_grouped(num, den, cov)
                else:
                    est = bundles[indices[0]]
                estimates[spec.alias] = est
                values[spec.alias] = (
                    est.quantile(spec.quantile)
                    if spec.quantile is not None
                    else est.values
                )
            if plan.having is not None:
                keys, values, estimates = apply_having_grouped(
                    plan.having, keys, values, estimates
                )
        observe_phase_seconds("estimate", perf_counter() - t0)
        return GroupedQueryResult(
            keys=keys,
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
            reuse=reuse,
        )

    def _estimate_spec(
        self,
        spec: AggSpec,
        params: GUSParams,
        sample: Table,
        subsample: SubsampleSpec | None,
    ) -> Estimate:
        if spec.kind == "avg":
            return self._estimate_avg(spec, params, sample)
        f = aggregate_input_vector(sample, spec)
        label = spec.kind.upper()
        if subsample is not None:
            return subsampled_estimate(
                params, f, sample.lineage, subsample, label=label
            )
        return estimate_sum(params, f, sample.lineage, label=label)

    def _estimate_avg(
        self, spec: AggSpec, params: GUSParams, sample: Table
    ) -> Estimate:
        """AVG = SUM/COUNT via the delta method (Section 9 extension)."""
        assert spec.expr is not None
        f = np.asarray(spec.expr.eval(sample), dtype=np.float64)
        ones = np.ones(sample.n_rows, dtype=np.float64)
        est_sum = estimate_sum(params, f, sample.lineage, label="SUM")
        est_count = estimate_sum(params, ones, sample.lineage, label="COUNT")
        cov = covariance_estimate(params, f, ones, sample.lineage)
        return ratio_estimate(est_sum, est_count, cov)
