"""The SBox: the paper's Section 6 statistical estimator component.

The SBox sits between the query plan and the aggregate.  It receives
exactly what Section 6 says it needs — the result tuples of the sampled
plan, their lineage, and the plan itself — and produces, per aggregate:

1. the single top GUS of the SOA-equivalent plan (Section 6.1, via the
   rewriter);
2. unbiased ``Ŷ_S`` estimates from the sample, or from a Section 7
   sub-sample when a :class:`~repro.core.subsample.SubsampleSpec` is
   given (Section 6.3);
3. the point estimate, variance, and confidence-interval /
   ``QUANTILE`` outputs (Section 6.4).

It is deliberately a self-contained "black box": nothing in it touches
the execution engine beyond consuming its output table.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.estimator import (
    Estimate,
    GroupedEstimates,
    estimate_sum,
    estimate_sums_grouped_multi,
    group_firsts,
    group_ids,
)
from repro.core.gus import GUSParams
from repro.core.rewrite import RewriteResult, rewrite_to_top_gus
from repro.core.subsample import SubsampleSpec, subsampled_estimate
from repro.errors import EstimationError, PlanError
from repro.relational.aggregates import aggregate_input_vector
from repro.relational.plan import Aggregate, AggSpec, GroupAggregate, PlanNode
from repro.relational.table import Table
from repro.stats.delta import (
    covariance_estimate,
    ratio_estimate,
    ratio_estimates_grouped,
)


@dataclass(frozen=True)
class QueryResult:
    """Everything an approximate aggregate query returns.

    ``values`` holds the per-alias answer the query's SELECT list asked
    for (point estimate, or the requested quantile for ``QUANTILE``
    columns).  ``estimates`` carries the full estimator objects so the
    caller can derive any interval afterwards; ``gus`` is the top
    quasi-operator of the SOA-equivalent plan; ``sample`` is the
    pre-aggregation result sample (with lineage) the estimates came
    from.
    """

    values: dict[str, float]
    estimates: dict[str, Estimate]
    gus: GUSParams
    sample: Table
    rewrite: RewriteResult = field(repr=False)
    plan: Aggregate | None = field(default=None, repr=False)

    def __getitem__(self, alias: str) -> float:
        return self.values[alias]

    def summary(self, level: float = 0.95, method: str = "normal") -> str:
        """Human-readable per-aggregate report."""
        lines = []
        for alias, est in self.estimates.items():
            ci = est.ci(level, method)
            lines.append(
                f"{alias}: {est.value:.6g}  ±{(ci.hi - ci.lo) / 2:.4g} "
                f"({level:.0%} {method}; n={est.n_sample}"
                + (", variance clamped" if est.clamped else "")
                + ")"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class GroupedQueryResult:
    """Everything an approximate GROUP BY query returns.

    ``keys`` holds one array per GROUP BY column, parallel over the
    realized groups (in sorted key order); ``values`` the per-alias
    answer arrays; ``estimates`` the full per-group estimator bundles
    so any interval can be derived afterwards.  Only groups the sample
    *observed* appear — a sample carries no information about groups it
    missed, so their absence is the honest output (compare against
    ground truth accordingly).  When the plan carried a HAVING clause
    it was applied to the *estimated* values, so group membership in
    the output is itself approximate.
    """

    keys: dict[str, np.ndarray]
    values: dict[str, np.ndarray]
    estimates: dict[str, GroupedEstimates]
    gus: GUSParams
    sample: Table
    rewrite: RewriteResult = field(repr=False)
    plan: GroupAggregate | None = field(default=None, repr=False)

    def __getitem__(self, alias: str) -> np.ndarray:
        return self.values[alias]

    @property
    def n_groups(self) -> int:
        first = next(iter(self.keys.values()))
        return int(first.shape[0])

    def __len__(self) -> int:
        return self.n_groups

    def group_rows(self) -> list[tuple]:
        """The group key tuples, in output order."""
        names = list(self.keys)
        return [
            tuple(self.keys[n][g] for n in names)
            for g in range(self.n_groups)
        ]

    def table(
        self, level: float | None = None, method: str = "normal"
    ) -> Table:
        """Materialize as a result table, one row per group.

        With ``level`` given, each aggregate column is flanked by
        ``<alias>_lo`` / ``<alias>_hi`` interval-bound columns
        (``NaN`` for singleton groups — see
        :class:`~repro.core.estimator.GroupedEstimates`).
        """
        columns: dict[str, np.ndarray] = dict(self.keys)
        for alias, vals in self.values.items():
            columns[alias] = vals
            if level is not None:
                lo, hi = self.estimates[alias].ci_bounds(level, method)
                columns[f"{alias}_lo"] = lo
                columns[f"{alias}_hi"] = hi
        return Table(None, columns)

    def summary(self, level: float = 0.95, method: str = "normal") -> str:
        """Human-readable per-group report."""
        lines = []
        key_names = list(self.keys)
        bounds = {
            alias: est.ci_bounds(level, method)
            for alias, est in self.estimates.items()
        }
        for g in range(self.n_groups):
            key_text = ", ".join(
                f"{n}={self.keys[n][g]}" for n in key_names
            )
            parts = []
            for alias, vals in self.values.items():
                lo, hi = bounds[alias][0][g], bounds[alias][1][g]
                parts.append(
                    f"{alias}: {vals[g]:.6g} [{lo:.6g}, {hi:.6g}]"
                )
            lines.append(f"({key_text})  " + "  ".join(parts))
        return "\n".join(lines)


class SBox:
    """The statistical estimator module (paper Figure in Section 6).

    ``catalog`` maps table names to :class:`Table`; it supplies both
    execution and the base-table cardinalities the rewriter needs.
    """

    def __init__(
        self,
        catalog: Mapping[str, Table],
        rng: np.random.Generator | None = None,
    ) -> None:
        self.catalog = dict(catalog)
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- pipeline ----------------------------------------------------------

    def analyze(self, plan: PlanNode) -> RewriteResult:
        """Section 6.1: compute the SOA-equivalent single-GUS form."""
        sizes = {name: t.n_rows for name, t in self.catalog.items()}
        return rewrite_to_top_gus(plan, sizes)

    def run(
        self,
        plan: Aggregate | GroupAggregate,
        *,
        subsample: SubsampleSpec | None = None,
        rng: np.random.Generator | None = None,
    ) -> "QueryResult | GroupedQueryResult":
        """Execute the sampled plan and estimate every aggregate.

        A :class:`~repro.relational.plan.GroupAggregate` plan routes to
        the vectorized grouped estimator and returns a
        :class:`GroupedQueryResult`.
        """
        from repro.relational.executor import Executor

        if not isinstance(plan, (Aggregate, GroupAggregate)):
            raise PlanError(
                "SBox.run expects an Aggregate or GroupAggregate plan"
            )
        rewrite = self.analyze(plan.child)
        executor = Executor(self.catalog, rng if rng is not None else self.rng)
        sample = executor.execute(plan.child)
        if isinstance(plan, GroupAggregate):
            return self.estimate_from_sample_grouped(
                plan, sample, rewrite, subsample=subsample
            )
        return self.estimate_from_sample(
            plan, sample, rewrite, subsample=subsample
        )

    def estimate_from_sample(
        self,
        plan: Aggregate,
        sample: Table,
        rewrite: RewriteResult | None = None,
        *,
        subsample: SubsampleSpec | None = None,
    ) -> QueryResult:
        """Estimate from an already-executed sample (the pure SBox API).

        This is the entry point a host database would call: it needs
        only the result tuples with lineage and the plan description.
        """
        if rewrite is None:
            rewrite = self.analyze(plan.child)
        params = rewrite.params
        estimates: dict[str, Estimate] = {}
        values: dict[str, float] = {}
        for spec in plan.specs:
            est = self._estimate_spec(spec, params, sample, subsample)
            estimates[spec.alias] = est
            values[spec.alias] = (
                est.quantile(spec.quantile)
                if spec.quantile is not None
                else est.value
            )
        return QueryResult(
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
        )

    def estimate_from_sample_grouped(
        self,
        plan: GroupAggregate,
        sample: Table,
        rewrite: RewriteResult | None = None,
        *,
        subsample: SubsampleSpec | None = None,
    ) -> GroupedQueryResult:
        """Per-group estimates from an already-executed sample.

        Group ids are assigned once from the GROUP BY columns of the
        sample (one lexsort); every aggregate then runs through the
        vectorized grouped moment machinery.  HAVING filters the
        estimated output.
        """
        if subsample is not None:
            raise EstimationError(
                "sub-sampled variance estimation is not supported for "
                "GROUP BY queries; the grouped moment pass is already "
                "one compaction over the sample"
            )
        if rewrite is None:
            rewrite = self.analyze(plan.child)
        params = rewrite.params
        key_cols = [sample.column(k) for k in plan.keys]
        gids, n_groups = group_ids(key_cols, sample.n_rows)
        first = group_firsts(gids, n_groups, sample.n_rows)
        keys = {k: col[first] for k, col in zip(plan.keys, key_cols)}
        # Every aggregate of the query shares one compaction and one
        # subgroup structure per lattice mask — collect all needed
        # weight vectors first and estimate them in a single batched
        # pass.  The all-ones COUNT vector is shared by COUNT(*) specs
        # and every AVG denominator; each AVG adds its numerator and
        # the f+1 polarization vector for the covariance.
        vectors: list[np.ndarray] = []
        vector_labels: list[str] = []
        ones_index: int | None = None

        def add_vector(vec: np.ndarray, label: str) -> int:
            vectors.append(vec)
            vector_labels.append(label)
            return len(vectors) - 1

        spec_inputs: list[tuple[AggSpec, tuple[int, ...]]] = []
        for spec in plan.specs:
            if spec.kind == "avg":
                assert spec.expr is not None
                f = np.asarray(spec.expr.eval(sample), dtype=np.float64)
                if ones_index is None:
                    ones_index = add_vector(
                        np.ones(sample.n_rows, dtype=np.float64), "COUNT"
                    )
                spec_inputs.append(
                    (
                        spec,
                        (
                            add_vector(f, "SUM"),
                            ones_index,
                            add_vector(f + 1.0, "SUM"),
                        ),
                    )
                )
            elif spec.kind == "count":
                if ones_index is None:
                    ones_index = add_vector(
                        aggregate_input_vector(sample, spec), "COUNT"
                    )
                spec_inputs.append((spec, (ones_index,)))
            else:
                f = aggregate_input_vector(sample, spec)
                spec_inputs.append(
                    (spec, (add_vector(f, spec.kind.upper()),))
                )
        bundles = estimate_sums_grouped_multi(
            params,
            vectors,
            sample.lineage,
            gids,
            n_groups,
            labels=vector_labels,
        )
        estimates: dict[str, GroupedEstimates] = {}
        values: dict[str, np.ndarray] = {}
        for spec, indices in spec_inputs:
            if spec.kind == "avg":
                num, den, both = (bundles[i] for i in indices)
                # Polarization: Cov = (Var(f+1) − Var(f) − Var(1)) / 2.
                cov = 0.5 * (
                    both.variance_raw
                    - num.variance_raw
                    - den.variance_raw
                )
                est = ratio_estimates_grouped(num, den, cov)
            else:
                est = bundles[indices[0]]
            estimates[spec.alias] = est
            values[spec.alias] = (
                est.quantile(spec.quantile)
                if spec.quantile is not None
                else est.values
            )
        if plan.having is not None:
            probe = Table(None, {**keys, **values})
            mask = np.asarray(plan.having.eval(probe), dtype=bool)
            picked = np.flatnonzero(mask)
            keys = {k: col[picked] for k, col in keys.items()}
            values = {a: v[picked] for a, v in values.items()}
            estimates = {a: e.take(picked) for a, e in estimates.items()}
        return GroupedQueryResult(
            keys=keys,
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
        )

    def _estimate_spec(
        self,
        spec: AggSpec,
        params: GUSParams,
        sample: Table,
        subsample: SubsampleSpec | None,
    ) -> Estimate:
        if spec.kind == "avg":
            return self._estimate_avg(spec, params, sample)
        f = aggregate_input_vector(sample, spec)
        label = spec.kind.upper()
        if subsample is not None:
            return subsampled_estimate(
                params, f, sample.lineage, subsample, label=label
            )
        return estimate_sum(params, f, sample.lineage, label=label)

    def _estimate_avg(
        self, spec: AggSpec, params: GUSParams, sample: Table
    ) -> Estimate:
        """AVG = SUM/COUNT via the delta method (Section 9 extension)."""
        assert spec.expr is not None
        f = np.asarray(spec.expr.eval(sample), dtype=np.float64)
        ones = np.ones(sample.n_rows, dtype=np.float64)
        est_sum = estimate_sum(params, f, sample.lineage, label="SUM")
        est_count = estimate_sum(params, ones, sample.lineage, label="COUNT")
        cov = covariance_estimate(params, f, ones, sample.lineage)
        return ratio_estimate(est_sum, est_count, cov)
