"""The SBox: the paper's Section 6 statistical estimator component.

The SBox sits between the query plan and the aggregate.  It receives
exactly what Section 6 says it needs — the result tuples of the sampled
plan, their lineage, and the plan itself — and produces, per aggregate:

1. the single top GUS of the SOA-equivalent plan (Section 6.1, via the
   rewriter);
2. unbiased ``Ŷ_S`` estimates from the sample, or from a Section 7
   sub-sample when a :class:`~repro.core.subsample.SubsampleSpec` is
   given (Section 6.3);
3. the point estimate, variance, and confidence-interval /
   ``QUANTILE`` outputs (Section 6.4).

It is deliberately a self-contained "black box": nothing in it touches
the execution engine beyond consuming its output table.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.estimator import Estimate, estimate_sum
from repro.core.gus import GUSParams
from repro.core.rewrite import RewriteResult, rewrite_to_top_gus
from repro.core.subsample import SubsampleSpec, subsampled_estimate
from repro.errors import PlanError
from repro.relational.aggregates import aggregate_input_vector
from repro.relational.plan import Aggregate, AggSpec, PlanNode
from repro.relational.table import Table
from repro.stats.delta import covariance_estimate, ratio_estimate


@dataclass(frozen=True)
class QueryResult:
    """Everything an approximate aggregate query returns.

    ``values`` holds the per-alias answer the query's SELECT list asked
    for (point estimate, or the requested quantile for ``QUANTILE``
    columns).  ``estimates`` carries the full estimator objects so the
    caller can derive any interval afterwards; ``gus`` is the top
    quasi-operator of the SOA-equivalent plan; ``sample`` is the
    pre-aggregation result sample (with lineage) the estimates came
    from.
    """

    values: dict[str, float]
    estimates: dict[str, Estimate]
    gus: GUSParams
    sample: Table
    rewrite: RewriteResult = field(repr=False)
    plan: Aggregate | None = field(default=None, repr=False)

    def __getitem__(self, alias: str) -> float:
        return self.values[alias]

    def summary(self, level: float = 0.95, method: str = "normal") -> str:
        """Human-readable per-aggregate report."""
        lines = []
        for alias, est in self.estimates.items():
            ci = est.ci(level, method)
            lines.append(
                f"{alias}: {est.value:.6g}  ±{(ci.hi - ci.lo) / 2:.4g} "
                f"({level:.0%} {method}; n={est.n_sample}"
                + (", variance clamped" if est.clamped else "")
                + ")"
            )
        return "\n".join(lines)


class SBox:
    """The statistical estimator module (paper Figure in Section 6).

    ``catalog`` maps table names to :class:`Table`; it supplies both
    execution and the base-table cardinalities the rewriter needs.
    """

    def __init__(
        self,
        catalog: Mapping[str, Table],
        rng: np.random.Generator | None = None,
    ) -> None:
        self.catalog = dict(catalog)
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- pipeline ----------------------------------------------------------

    def analyze(self, plan: PlanNode) -> RewriteResult:
        """Section 6.1: compute the SOA-equivalent single-GUS form."""
        sizes = {name: t.n_rows for name, t in self.catalog.items()}
        return rewrite_to_top_gus(plan, sizes)

    def run(
        self,
        plan: Aggregate,
        *,
        subsample: SubsampleSpec | None = None,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Execute the sampled plan and estimate every aggregate."""
        from repro.relational.executor import Executor

        if not isinstance(plan, Aggregate):
            raise PlanError("SBox.run expects an Aggregate plan")
        rewrite = self.analyze(plan.child)
        executor = Executor(self.catalog, rng if rng is not None else self.rng)
        sample = executor.execute(plan.child)
        return self.estimate_from_sample(
            plan, sample, rewrite, subsample=subsample
        )

    def estimate_from_sample(
        self,
        plan: Aggregate,
        sample: Table,
        rewrite: RewriteResult | None = None,
        *,
        subsample: SubsampleSpec | None = None,
    ) -> QueryResult:
        """Estimate from an already-executed sample (the pure SBox API).

        This is the entry point a host database would call: it needs
        only the result tuples with lineage and the plan description.
        """
        if rewrite is None:
            rewrite = self.analyze(plan.child)
        params = rewrite.params
        estimates: dict[str, Estimate] = {}
        values: dict[str, float] = {}
        for spec in plan.specs:
            est = self._estimate_spec(spec, params, sample, subsample)
            estimates[spec.alias] = est
            values[spec.alias] = (
                est.quantile(spec.quantile)
                if spec.quantile is not None
                else est.value
            )
        return QueryResult(
            values=values,
            estimates=estimates,
            gus=params,
            sample=sample,
            rewrite=rewrite,
            plan=plan,
        )

    def _estimate_spec(
        self,
        spec: AggSpec,
        params: GUSParams,
        sample: Table,
        subsample: SubsampleSpec | None,
    ) -> Estimate:
        if spec.kind == "avg":
            return self._estimate_avg(spec, params, sample)
        f = aggregate_input_vector(sample, spec)
        label = spec.kind.upper()
        if subsample is not None:
            return subsampled_estimate(
                params, f, sample.lineage, subsample, label=label
            )
        return estimate_sum(params, f, sample.lineage, label=label)

    def _estimate_avg(
        self, spec: AggSpec, params: GUSParams, sample: Table
    ) -> Estimate:
        """AVG = SUM/COUNT via the delta method (Section 9 extension)."""
        assert spec.expr is not None
        f = np.asarray(spec.expr.eval(sample), dtype=np.float64)
        ones = np.ones(sample.n_rows, dtype=np.float64)
        est_sum = estimate_sum(params, f, sample.lineage, label="SUM")
        est_count = estimate_sum(params, ones, sample.lineage, label="COUNT")
        cov = covariance_estimate(params, f, ones, sample.lineage)
        return ratio_estimate(est_sum, est_count, cov)
