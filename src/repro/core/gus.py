"""GUS (Generalized Uniform Sampling) parameter objects.

A GUS method ``G(a, b̄)`` over a lineage schema ``L`` (Definition 1 of
the paper) is fully described by

* ``a = P[t ∈ sample]`` — the first-order inclusion probability, the
  same for every tuple, and
* ``b_T = P[t, t' ∈ sample | T(t,t') = T]`` for every ``T ⊆ L`` — the
  second-order inclusion probability of a pair of tuples whose lineage
  agrees exactly on the base relations in ``T``.

Consistency requires ``b_L = a``: a "pair" with identical lineage on
every relation *is* a single tuple, so its joint inclusion probability
is ``a`` itself.  :class:`GUSParams` enforces this (and the obvious
range constraints) unless constructed with ``validate=False``, which the
algebra-law tests use to explore the parameter space freely.

The constructors at the bottom of the module implement the paper's
Figure 1 (Bernoulli and without-replacement sampling) plus the identity
and null elements of the GUS semiring.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

import numpy as np

from repro.core.lattice import SubsetLattice, mobius_subsets, validate_vector
from repro.errors import LatticeError, ReproError

#: Numerical slack for probability range / consistency checks.
_TOL = 1e-9


class GUSParams:
    """Immutable parameters ``(a, b̄)`` of a GUS quasi-operator.

    ``b`` is stored as a dense vector over the subset lattice of the
    lineage schema; ``b[mask]`` is ``b_T`` for the subset encoded by
    ``mask`` (see :class:`~repro.core.lattice.SubsetLattice`).
    """

    __slots__ = ("lattice", "a", "b")

    def __init__(
        self,
        lattice: SubsetLattice,
        a: float,
        b: np.ndarray | Iterable[float],
        *,
        validate: bool = True,
    ) -> None:
        self.lattice = lattice
        self.a = float(a)
        arr = validate_vector(lattice, np.asarray(b, dtype=np.float64))
        arr.setflags(write=False)
        self.b = arr
        if validate:
            self._check()

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_mapping(
        cls,
        schema: Iterable[str],
        a: float,
        b: Mapping[frozenset[str], float],
        *,
        validate: bool = True,
    ) -> "GUSParams":
        """Build from a ``{subset-of-names: b_T}`` mapping.

        Every subset of the schema must be present; this mirrors how the
        paper writes out ``b̄`` in its examples and keeps tests readable.
        """
        lattice = SubsetLattice(schema)
        vec = np.empty(lattice.size, dtype=np.float64)
        seen = 0
        for subset, value in b.items():
            mask = lattice.mask_of(subset)
            vec[mask] = value
            seen += 1
        if seen != lattice.size:
            raise LatticeError(
                f"b̄ mapping has {seen} entries; lattice needs {lattice.size}"
            )
        return cls(lattice, a, vec, validate=validate)

    def _check(self) -> None:
        if not -_TOL <= self.a <= 1.0 + _TOL:
            raise ReproError(f"a={self.a} is not a probability")
        if np.any(self.b < -_TOL) or np.any(self.b > 1.0 + _TOL):
            raise ReproError("some b_T is not a probability")
        full = float(self.b[self.lattice.full_mask])
        if not math.isclose(full, self.a, rel_tol=1e-6, abs_tol=1e-9):
            raise ReproError(
                f"b_L={full} must equal a={self.a}: a pair of tuples with "
                "identical lineage is a single tuple"
            )

    # -- accessors --------------------------------------------------------

    @property
    def schema(self) -> frozenset[str]:
        """The lineage schema ``L`` as a set of base-relation names."""
        return frozenset(self.lattice.dims)

    def b_of(self, subset: Iterable[str]) -> float:
        """``b_T`` for a subset given by relation names."""
        return float(self.b[self.lattice.mask_of(subset)])

    def b_items(self) -> dict[frozenset[str], float]:
        """The full ``b̄`` as a ``{names: value}`` dict (for display)."""
        return {
            self.lattice.set_of(mask): float(self.b[mask])
            for mask in self.lattice.masks()
        }

    def c_vector(self) -> np.ndarray:
        """Theorem 1 coefficients ``c_S = Σ_{T⊆S} (−1)^{|S|+|T|} b_T``.

        Computed as the Möbius transform of ``b`` over the subset
        lattice (O(n·2ⁿ)).
        """
        return mobius_subsets(self.b, self.lattice.n)

    def approx_equal(self, other: "GUSParams", tol: float = 1e-9) -> bool:
        """Numerical equality of schema, ``a`` and every ``b_T``."""
        return (
            self.lattice == other.lattice
            and math.isclose(self.a, other.a, rel_tol=tol, abs_tol=tol)
            and bool(np.allclose(self.b, other.b, rtol=tol, atol=tol))
        )

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"b_{{{','.join(sorted(k)) or '∅'}}}={v:.6g}"
            for k, v in sorted(self.b_items().items(), key=lambda kv: sorted(kv[0]))
        )
        return f"GUSParams(schema={sorted(self.schema)}, a={self.a:.6g}, {pairs})"

    # -- identity-dimension analysis --------------------------------------

    def inactive_dims(self, tol: float = 1e-12) -> frozenset[str]:
        """Dimensions along which ``b̄`` is constant.

        A dimension ``d`` is *inactive* when ``b_{T∪{d}} = b_T`` for all
        ``T`` — exactly the situation of an unsampled base relation that
        entered the schema through a join with the identity GUS.  For
        every ``S`` containing an inactive dimension the Möbius
        alternating sum cancels, so ``c_S = 0`` and the dimension can be
        dropped from the analysis; see :meth:`project_out_inactive`.
        """
        inactive = []
        for i, dim in enumerate(self.lattice.dims):
            bit = 1 << i
            lo = np.array([m for m in self.lattice.masks() if not m & bit])
            if np.allclose(self.b[lo], self.b[lo | bit], rtol=0, atol=tol):
                inactive.append(dim)
        return frozenset(inactive)

    def project_out_inactive(self, tol: float = 1e-12) -> "GUSParams":
        """Re-express the same process over the active lineage schema.

        The result is a valid GUS over the active dimensions only: the
        sampling process is unchanged, we merely observe lineage at a
        coarser granularity.  Reduces Theorem 1's ``2ⁿ`` terms to
        ``2^(#sampled relations)``.
        """
        inactive = self.inactive_dims(tol)
        if not inactive:
            return self
        active = [d for d in self.lattice.dims if d not in inactive]
        sub = SubsetLattice(active)
        vec = np.empty(sub.size, dtype=np.float64)
        for mask in sub.masks():
            vec[mask] = self.b[self.lattice.mask_of(sub.set_of(mask))]
        return GUSParams(sub, self.a, vec, validate=False)


# ---------------------------------------------------------------------------
# Constructors for known sampling methods (paper Figure 1) and the
# semiring's distinguished elements.
# ---------------------------------------------------------------------------


def identity_gus(schema: Iterable[str]) -> GUSParams:
    """``G(1, 1̄)`` — passes everything through (Proposition 4).

    The multiplicative identity of compaction and the absorbing element
    of union.
    """
    lattice = SubsetLattice(schema)
    return GUSParams(lattice, 1.0, np.ones(lattice.size))


def null_gus(schema: Iterable[str]) -> GUSParams:
    """``G(0, 0̄)`` — blocks everything.

    The additive identity of union and the annihilator of compaction.
    """
    lattice = SubsetLattice(schema)
    return GUSParams(lattice, 0.0, np.zeros(lattice.size))


def bernoulli_gus(relation: str, p: float) -> GUSParams:
    """Bernoulli(p) sampling of a single relation.

    ``a = p``; distinct tuples are included independently so
    ``b_∅ = p²``; a pair with identical lineage is one tuple, so
    ``b_R = p`` (paper Figure 1, first row).
    """
    if not 0.0 <= p <= 1.0:
        raise ReproError(f"Bernoulli rate p={p} is not a probability")
    return GUSParams.from_mapping(
        [relation],
        p,
        {frozenset(): p * p, frozenset([relation]): p},
    )


def without_replacement_gus(relation: str, n: int, population: int) -> GUSParams:
    """Fixed-size WOR (simple random) sampling of ``n`` of ``N`` tuples.

    ``a = n/N``; a pair of *distinct* tuples is jointly included with
    the hypergeometric probability ``n(n−1)/(N(N−1))`` (paper Figure 1,
    second row).
    """
    if population <= 0:
        raise ReproError(f"population {population} must be positive")
    if not 0 <= n <= population:
        raise ReproError(f"sample size {n} not in [0, {population}]")
    a = n / population
    if population == 1:
        b_empty = 0.0  # no distinct pair exists; value is immaterial
    else:
        b_empty = n * (n - 1) / (population * (population - 1))
    return GUSParams.from_mapping(
        [relation],
        a,
        {frozenset(): b_empty, frozenset([relation]): a},
    )


def single_relation_gus(relation: str, a: float, b_empty: float) -> GUSParams:
    """An arbitrary single-relation GUS from its two free parameters.

    Any uniform filter over one relation is determined by ``a`` and
    ``b_∅`` (``b_R = a`` is forced); this is the generic entry point for
    vendor-defined ``SYSTEM`` sampling once its two probabilities are
    known.
    """
    return GUSParams.from_mapping(
        [relation],
        a,
        {frozenset(): b_empty, frozenset([relation]): a},
    )
