"""Executable SOA-equivalence checking (Proposition 3 as an oracle).

Proposition 3 characterizes SOA-equivalence through first- and
second-order inclusion probabilities.  This module turns that into a
verifiable claim about our rewriter: execute the *original* sampled
plan many times, measure

* the empirical inclusion rate of each full-result row,
* the empirical mean and variance of a SUM aggregate,

and compare against what the rewritten single-GUS plan *predicts*
(``a`` for every row; Theorem 1 for the moments).  Agreement within
Monte-Carlo error is exactly the paper's notion of equivalence made
testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.estimator import exact_moments
from repro.core.rewrite import rewrite_to_top_gus
from repro.errors import PlanError
from repro.relational.expressions import Expr
from repro.relational.plan import (
    GUSNode,
    LineageSample,
    PlanNode,
    Scan,
    TableSample,
)
from repro.relational.table import Table
from repro.sampling.base import Draw, SamplingMethod


class _LineageOnly(SamplingMethod):
    """Keeps every row but installs the wrapped method's lineage unit.

    Block sampling assigns block-granularity lineage; the ground-truth
    run must observe the *same* lineage ids as the sampled run, so the
    exact plan applies lineage assignment without any filtering.
    """

    def __init__(self, inner: SamplingMethod) -> None:
        self.inner = inner

    def draw(self, n_rows: int, rng: np.random.Generator) -> Draw:
        lineage = self.inner.draw(n_rows, rng).lineage
        return Draw(mask=np.ones(n_rows, dtype=bool), lineage=lineage)

    def gus(self, relation: str, n_rows: int):  # pragma: no cover
        from repro.core.gus import identity_gus

        return identity_gus([relation])

    def describe(self) -> str:
        return f"LINEAGE-ONLY({self.inner.describe()})"


def lineage_preserving_exact(plan: PlanNode) -> PlanNode:
    """The exact (keep-everything) plan with sampling-unit lineage.

    Like :func:`~repro.relational.plan.strip_sampling` but retains each
    ``TableSample``'s lineage assignment so result rows key identically
    to the sampled plan's rows.
    """
    from repro.relational import plan as p

    if isinstance(plan, TableSample):
        return TableSample(plan.child, _LineageOnly(plan.method))
    if isinstance(plan, (LineageSample, GUSNode)):
        return lineage_preserving_exact(plan.child)
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, p.Select):
        return p.Select(lineage_preserving_exact(plan.child), plan.predicate)
    if isinstance(plan, p.Project):
        return p.Project(lineage_preserving_exact(plan.child), plan.outputs)
    if isinstance(plan, p.Join):
        return p.Join(
            lineage_preserving_exact(plan.left),
            lineage_preserving_exact(plan.right),
            plan.left_keys,
            plan.right_keys,
        )
    if isinstance(plan, p.CrossProduct):
        return p.CrossProduct(
            lineage_preserving_exact(plan.left),
            lineage_preserving_exact(plan.right),
        )
    if isinstance(plan, (p.Union, p.Intersect)):
        ctor = p.Union if isinstance(plan, p.Union) else p.Intersect
        return ctor(
            lineage_preserving_exact(plan.left),
            lineage_preserving_exact(plan.right),
        )
    if isinstance(plan, p.Aggregate):
        return p.Aggregate(lineage_preserving_exact(plan.child), plan.specs)
    raise PlanError(f"cannot build exact plan for {type(plan).__name__}")


@dataclass(frozen=True)
class SOAReport:
    """Comparison of Monte-Carlo reality vs. GUS prediction."""

    trials: int
    predicted_a: float
    max_inclusion_error: float
    predicted_mean: float
    mc_mean: float
    predicted_var: float
    mc_var: float

    @property
    def mean_z(self) -> float:
        """Standardized deviation of the MC mean from the prediction."""
        if self.predicted_var <= 0:
            return 0.0 if self.mc_mean == self.predicted_mean else math.inf
        return abs(self.mc_mean - self.predicted_mean) / math.sqrt(
            self.predicted_var / self.trials
        )

    @property
    def var_ratio(self) -> float:
        """MC variance over predicted variance (→ 1 under equivalence)."""
        if self.predicted_var == 0:
            return 1.0 if self.mc_var == 0 else math.inf
        return self.mc_var / self.predicted_var

    def ok(
        self,
        mean_z_max: float = 5.0,
        var_rel_tol: float = 0.25,
        inclusion_tol: float | None = None,
    ) -> bool:
        """Loose acceptance test sized for Monte-Carlo noise."""
        if inclusion_tol is None:
            # Binomial std of an inclusion estimate, with 6-sigma slack.
            inclusion_tol = 6.0 * math.sqrt(
                max(self.predicted_a * (1 - self.predicted_a), 1e-12)
                / self.trials
            )
        return (
            self.mean_z <= mean_z_max
            and abs(self.var_ratio - 1.0) <= var_rel_tol
            and self.max_inclusion_error <= inclusion_tol
        )


def _lineage_keys(table: Table) -> list[tuple[int, ...]]:
    rels = sorted(table.lineage)
    cols = [table.lineage[r] for r in rels]
    return list(zip(*[c.tolist() for c in cols])) if cols else [()] * table.n_rows


def soa_check(
    catalog: dict[str, Table],
    plan: PlanNode,
    f_expr: Expr,
    *,
    trials: int = 2000,
    seed: int = 0,
) -> SOAReport:
    """Monte-Carlo vs. analytic comparison for a sampled plan.

    ``plan`` is the (non-aggregate) sampled expression; ``f_expr`` the
    SUM argument used as the probe aggregate.
    """
    from repro.relational.executor import Executor

    sizes = {name: t.n_rows for name, t in catalog.items()}
    rewrite = rewrite_to_top_gus(plan, sizes)
    params = rewrite.params

    # Ground truth: keep every row, but observe the sampling-unit
    # lineage (block ids for block sampling, etc.).
    exact_exec = Executor(catalog, np.random.default_rng(0))
    full = exact_exec.execute(lineage_preserving_exact(plan))
    if full.n_rows == 0:
        raise PlanError("SOA check needs a non-empty full result")
    f_full = np.asarray(f_expr.eval(full), dtype=np.float64)
    pruned = params.project_out_inactive()
    lineage_full = {d: full.lineage[d] for d in pruned.lattice.dims}
    predicted_mean, predicted_var = exact_moments(params, f_full, lineage_full)

    # Count inclusion per distinct lineage key: under block sampling
    # many result rows share a key, and P[key present] = a holds per
    # sampling unit, not per row.
    full_keys = {key: i for i, key in enumerate(set(_lineage_keys(full)))}
    inclusion_counts = np.zeros(len(full_keys), dtype=np.int64)

    rng = np.random.default_rng(seed)
    estimates = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        executor = Executor(catalog, rng)
        sample = executor.execute(plan)
        f_sample = np.asarray(f_expr.eval(sample), dtype=np.float64)
        estimates[t] = float(f_sample.sum()) / params.a if params.a else 0.0
        for key in set(_lineage_keys(sample)):
            inclusion_counts[full_keys[key]] += 1

    inclusion_rates = inclusion_counts / trials
    return SOAReport(
        trials=trials,
        predicted_a=params.a,
        max_inclusion_error=float(np.max(np.abs(inclusion_rates - params.a))),
        predicted_mean=predicted_mean,
        mc_mean=float(estimates.mean()),
        predicted_var=predicted_var,
        mc_var=float(estimates.var()),
    )


def pair_inclusion_check(
    catalog: dict[str, Table],
    plan: PlanNode,
    *,
    trials: int = 4000,
    seed: int = 0,
    max_pairs: int = 200,
) -> float:
    """Max deviation of empirical pair-inclusion rates from ``b_T``.

    The second half of Proposition 3: for row pairs with lineage
    agreement pattern ``T``, joint survival should occur at rate
    ``b_T``.  Returns the worst absolute error over (a capped number
    of) pairs.
    """
    from repro.relational.executor import Executor

    sizes = {name: t.n_rows for name, t in catalog.items()}
    params = rewrite_to_top_gus(plan, sizes).params

    exact_exec = Executor(catalog, np.random.default_rng(0))
    full = exact_exec.execute(lineage_preserving_exact(plan))
    keys = _lineage_keys(full)
    index = {key: i for i, key in enumerate(keys)}
    n = full.n_rows
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)][:max_pairs]

    rels = sorted(set(params.lattice.dims) & set(full.lineage))
    rel_cols = {r: full.lineage[r] for r in rels}

    def agreement(i: int, j: int) -> int:
        subset = [r for r in rels if rel_cols[r][i] == rel_cols[r][j]]
        return params.lattice.mask_of(subset)

    joint = np.zeros(len(pairs), dtype=np.int64)
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        sample = Executor(catalog, rng).execute(plan)
        present = np.zeros(n, dtype=bool)
        for key in _lineage_keys(sample):
            present[index[key]] = True
        for k, (i, j) in enumerate(pairs):
            if present[i] and present[j]:
                joint[k] += 1

    worst = 0.0
    for k, (i, j) in enumerate(pairs):
        expected = float(params.b[agreement(i, j)])
        worst = max(worst, abs(joint[k] / trials - expected))
    return worst
