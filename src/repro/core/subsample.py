"""Section 7: efficient variance estimation from a sub-sample.

Estimating the ``y_S`` terms needs ``2^k`` GROUP BY passes over the
result sample, which dominates cost for large samples.  The paper's
fix: keep the *point* estimate on the full sample (it needs no
lineage), but estimate the ``Ŷ_S`` on a small **lineage-keyed
Bernoulli sub-sample** of the result.

Correctness requires the sub-sampler to be a GUS — dropping a base
tuple must drop every result row it contributed to — which the
pseudo-random hash filter of
:class:`~repro.sampling.pseudorandom.LineageHashBernoulli` guarantees
with one seed per base relation.  The sub-sampled rows are governed by
the *compaction* (Prop 8) of the sub-sampler's composed Bernoulli
(Prop 9) onto the plan's top GUS, so the standard unbiasing recursion
applies with the composed parameters, while the variance formula keeps
the **original** plan's ``c_S/a²`` coefficients (we are still
estimating the full-sample estimator's variance).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.algebra import compact_gus
from repro.core.estimator import (
    Estimate,
    theorem1_variance,
    unbiased_y_terms,
    y_terms,
)
from repro.core.gus import GUSParams
from repro.errors import EstimationError
from repro.sampling.composed import BiDimensionalBernoulli

#: Section 7's rule of thumb: ~10,000 result rows suffice for the
#: y-term estimates (based on the DBO / Turbo-DBO experience).
DEFAULT_TARGET_ROWS = 10_000


@dataclass(frozen=True)
class SubsampleSpec:
    """How to sub-sample for variance estimation.

    ``rate`` is either one per-dimension keep probability applied to
    every sampled relation, or a per-relation mapping.  ``target_rows``
    (used when ``rate`` is None) picks a uniform per-dimension rate so
    the expected sub-sample size is roughly that many rows.
    """

    rate: float | Mapping[str, float] | None = None
    target_rows: int = DEFAULT_TARGET_ROWS
    seed: int = 0

    def rates_for(self, dims: tuple[str, ...], n_rows: int) -> dict[str, float]:
        """Resolve to a per-dimension rate mapping."""
        if isinstance(self.rate, Mapping):
            missing = set(dims) - set(self.rate)
            if missing:
                raise EstimationError(
                    f"subsample rates missing for dimensions {sorted(missing)}"
                )
            return {d: float(self.rate[d]) for d in dims}
        if self.rate is not None:
            return {d: float(self.rate) for d in dims}
        if n_rows <= self.target_rows or not dims:
            return {d: 1.0 for d in dims}
        overall = self.target_rows / n_rows
        per_dim = overall ** (1.0 / len(dims))
        return {d: per_dim for d in dims}


def subsampled_estimate(
    params: GUSParams,
    f_sample: np.ndarray,
    lineage_sample: Mapping[str, np.ndarray],
    spec: SubsampleSpec,
    *,
    label: str = "SUM",
) -> Estimate:
    """Full-sample point estimate, sub-sample variance estimate."""
    if params.a <= 0.0:
        raise EstimationError("cannot estimate from a = 0 (null sampling)")
    f_sample = np.asarray(f_sample, dtype=np.float64)
    pruned = params.project_out_inactive()
    value = float(np.sum(f_sample)) / params.a

    if pruned.lattice.n == 0:
        # No sampling anywhere: zero variance, nothing to sub-sample.
        return Estimate(value, 0.0, int(f_sample.shape[0]), label=label)

    rates = spec.rates_for(pruned.lattice.dims, int(f_sample.shape[0]))
    sampler = BiDimensionalBernoulli(rates, seed=spec.seed)
    mask = sampler.keep(lineage_sample)
    sub_f = f_sample[mask]
    sub_lineage = {
        d: lineage_sample[d][mask] for d in pruned.lattice.dims
    }
    composed = compact_gus(sampler.gus(), pruned)
    plugin = y_terms(sub_f, sub_lineage, pruned.lattice)
    yhat = unbiased_y_terms(composed, plugin)
    # The c_S/a² weights are the ORIGINAL plan's: we estimate the
    # variance of the full-sample estimator, only the y-terms come from
    # the sub-sample.
    var_raw = theorem1_variance(pruned, yhat)
    return Estimate(
        value=value,
        variance_raw=var_raw,
        n_sample=int(f_sample.shape[0]),
        label=label,
        extras={
            "a": params.a,
            "active_dims": pruned.lattice.dims,
            "n_subsample": int(sub_f.shape[0]),
            "subsample_rates": rates,
        },
    )
