"""The sampling algebra: how GUS quasi-operators combine.

This module implements the parameter maps of the paper's Section 4–5
propositions.  Each function takes :class:`~repro.core.gus.GUSParams`
and returns the parameters of the SOA-equivalent single GUS:

* :func:`join_gus`      — Proposition 6 (GUS commutes with ⋈ / ×);
* :func:`compose_gus`   — Proposition 9 (multi-dimensional design);
* :func:`union_gus`     — Proposition 7 (combining two samples of R);
* :func:`compact_gus`   — Proposition 8 (stacking samplers / intersection);
* :func:`lift_gus`      — embedding into a larger lineage schema by
  joining with the identity GUS (Proposition 4).

Algebraic structure (Theorem 2, verified in tests): union and
compaction are commutative monoids with identities ``G(0,0̄)`` and
``G(1,1̄)`` respectively; ``G(0,0̄)`` annihilates compaction and
``G(1,1̄)`` absorbs union.  Under union the quantities ``1−a`` and
``u_T = 1−2a+b_T`` are multiplicative; under compaction ``a`` and
``b_T`` themselves are.  Full distributivity of compaction over union
does **not** hold for these independent-process maps (the test suite
exhibits a counterexample), so "semiring" should be read as the pair of
monoids plus null elements, which is all the paper's constructions use.
"""

from __future__ import annotations

import numpy as np

from repro.core.gus import GUSParams, identity_gus
from repro.core.lattice import SubsetLattice
from repro.errors import SelfJoinError

__all__ = [
    "join_gus",
    "compose_gus",
    "union_gus",
    "compact_gus",
    "lift_gus",
]


def join_gus(left: GUSParams, right: GUSParams) -> GUSParams:
    """Proposition 6: merge the GUS operators of two join inputs.

    For ``G(a₁,b̄₁)(R₁) ⋈ G(a₂,b̄₂)(R₂)`` with disjoint lineage,
    the SOA-equivalent top GUS over ``L₁ ∪ L₂`` has

        ``a = a₁·a₂``  and  ``b_T = b₁,(T∩L₁) · b₂,(T∩L₂)``.

    Raises :class:`~repro.errors.SelfJoinError` when the lineage
    schemas overlap — the precondition that rules out self-joins.
    """
    overlap = left.schema & right.schema
    if overlap:
        raise SelfJoinError(
            f"join inputs share lineage {sorted(overlap)}; Proposition 6 "
            "requires disjoint lineage (self-joins are not analysable)"
        )
    lattice = SubsetLattice(left.schema | right.schema)

    # Decompose every combined mask into its left / right components,
    # re-encoded in the operand lattices — vectorized bit scatter so a
    # 10-relation rewrite stays in the paper's "few milliseconds".
    masks = np.arange(lattice.size, dtype=np.int64)
    left_idx = np.zeros(lattice.size, dtype=np.int64)
    right_idx = np.zeros(lattice.size, dtype=np.int64)
    for i, dim in enumerate(lattice.dims):
        bit = (masks >> i) & 1
        if dim in left.schema:
            left_idx |= bit << left.lattice.dims.index(dim)
        else:
            right_idx |= bit << right.lattice.dims.index(dim)
    vec = left.b[left_idx] * right.b[right_idx]
    return GUSParams(lattice, left.a * right.a, vec, validate=False)


def compose_gus(left: GUSParams, right: GUSParams) -> GUSParams:
    """Proposition 9: compose samplers over disjoint expressions.

    ``G₁(R₁) ∘ G₂(R₂)`` builds a multi-dimensional sampling operator
    (e.g. the bi-dimensional Bernoulli of Example 5).  The parameter map
    coincides with the join rule — the distinction is one of *usage*
    (designing a new operator vs. analysing a join), so this is a
    documented alias kept for fidelity to the paper's statement.
    """
    return join_gus(left, right)


def _aligned(left: GUSParams, right: GUSParams) -> tuple[GUSParams, GUSParams]:
    """Lift both operands onto their common (union) lineage schema."""
    schema = left.schema | right.schema
    return lift_gus(left, schema), lift_gus(right, schema)


def union_gus(left: GUSParams, right: GUSParams) -> GUSParams:
    """Proposition 7: union of two independent GUS samples of ``R``.

        ``a = a₁ + a₂ − a₁a₂``
        ``b_T = 2a − 1 + (1 − 2a₁ + b₁,T)(1 − 2a₂ + b₂,T)``

    Derivation (inclusion–exclusion on the complement): a tuple is
    *excluded* from the union with probability ``(1−a₁)(1−a₂)`` and a
    pair is jointly excluded with probability ``Π_i (1−2a_i+b_i,T)``,
    whence both quantities are multiplicative across unions — this is
    what makes the operation associative.
    """
    left, right = _aligned(left, right)
    a = left.a + right.a - left.a * right.a
    u = (1.0 - 2.0 * left.a + left.b) * (1.0 - 2.0 * right.a + right.b)
    vec = 2.0 * a - 1.0 + u
    return GUSParams(left.lattice, a, vec, validate=False)


def compact_gus(outer: GUSParams, inner: GUSParams) -> GUSParams:
    """Proposition 8: stack one GUS on the output of another.

    Because the two filters are independent and both act on lineage,
    both ``a`` and every ``b_T`` simply multiply:

        ``a = a₁·a₂``,  ``b_T = b₁,T · b₂,T``.

    The same map analyses the *intersection* of two independent samples
    of the same expression.  This is the workhorse of Section 7, where a
    cheap lineage-keyed Bernoulli is compacted onto the plan's GUS to
    estimate variance from a small sub-sample.
    """
    outer, inner = _aligned(outer, inner)
    return GUSParams(
        outer.lattice,
        outer.a * inner.a,
        outer.b * inner.b,
        validate=False,
    )


def lift_gus(params: GUSParams, schema: frozenset[str] | set[str]) -> GUSParams:
    """Embed ``params`` into a larger lineage schema.

    New dimensions behave as the identity GUS (Proposition 4): the
    underlying process ignores them, so ``b'_T = b_{T ∩ L}``.
    Implemented as a join with ``G(1,1̄)`` over the added relations,
    which keeps the algebra's single source of truth.
    """
    extra = frozenset(schema) - params.schema
    if not extra:
        if frozenset(schema) != params.schema:
            raise SelfJoinError(
                f"cannot lift {sorted(params.schema)} onto smaller schema "
                f"{sorted(schema)}"
            )
        return params
    return join_gus(params, identity_gus(extra))
