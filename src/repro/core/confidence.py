"""Confidence intervals and quantiles for sampling estimates.

Section 6.4 of the paper offers two interval families on top of the
estimated mean ``µ̂`` and standard deviation ``σ̂``:

* **optimistic** normal intervals — the estimator is a sum of many
  loosely-interacting parts, so its distribution is close to normal
  even though the samples are not IID (``µ̂ ± 1.96 σ̂`` at 95%);
* **pessimistic** Chebyshev intervals, valid for *any* distribution at
  roughly twice the width (``µ̂ ± 4.47 σ̂`` at 95%).

One-sided quantiles (the paper's ``QUANTILE(SUM(e), q)`` syntax) use the
normal quantile function or the one-sided Cantelli inequality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

from repro.errors import EstimationError

#: Interval/quantile methods accepted throughout the library.
METHODS = ("normal", "chebyshev")


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval ``[lo, hi]`` at confidence ``level``."""

    lo: float
    hi: float
    level: float
    method: str

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"[{self.lo:.6g}, {self.hi:.6g}] "
            f"({self.level:.0%} {self.method})"
        )


def _check_level(level: float) -> None:
    if not 0.0 < level < 1.0:
        raise EstimationError(f"confidence level {level} must be in (0, 1)")


def normal_interval(mean: float, std: float, level: float = 0.95) -> ConfidenceInterval:
    """Two-sided normal interval ``µ ± z_{(1+level)/2} σ``."""
    _check_level(level)
    z = float(norm.ppf(0.5 + level / 2.0))
    return ConfidenceInterval(mean - z * std, mean + z * std, level, "normal")


def chebyshev_interval(
    mean: float, std: float, level: float = 0.95
) -> ConfidenceInterval:
    """Distribution-free interval ``µ ± kσ`` with ``k = 1/√(1−level)``.

    At 95% this is ``k ≈ 4.47``, the paper's quoted constant.
    """
    _check_level(level)
    k = 1.0 / math.sqrt(1.0 - level)
    return ConfidenceInterval(mean - k * std, mean + k * std, level, "chebyshev")


def interval(
    mean: float, std: float, level: float = 0.95, method: str = "normal"
) -> ConfidenceInterval:
    """Dispatch to :func:`normal_interval` or :func:`chebyshev_interval`."""
    if method == "normal":
        return normal_interval(mean, std, level)
    if method == "chebyshev":
        return chebyshev_interval(mean, std, level)
    raise EstimationError(f"unknown interval method {method!r}; use {METHODS}")


def normal_quantile(mean: float, std: float, q: float) -> float:
    """One-sided quantile under normality: ``µ + Φ⁻¹(q)·σ``.

    This is the value the paper's ``QUANTILE(SUM(e), q)`` clause
    returns: the true aggregate lies below it with probability ``q``.
    """
    if not 0.0 < q < 1.0:
        raise EstimationError(f"quantile {q} must be in (0, 1)")
    return mean + float(norm.ppf(q)) * std


def cantelli_quantile(mean: float, std: float, q: float) -> float:
    """Distribution-free one-sided quantile via Cantelli's inequality.

    ``P(X − µ ≥ kσ) ≤ 1/(1+k²)`` gives ``k = √(q/(1−q))`` for an upper
    ``q``-quantile (and symmetrically for ``q < 1/2``), conservative for
    any distribution.
    """
    if not 0.0 < q < 1.0:
        raise EstimationError(f"quantile {q} must be in (0, 1)")
    if q >= 0.5:
        k = math.sqrt(q / (1.0 - q))
    else:
        k = -math.sqrt((1.0 - q) / q)
    return mean + k * std


def quantile(mean: float, std: float, q: float, method: str = "normal") -> float:
    """Dispatch to :func:`normal_quantile` or :func:`cantelli_quantile`."""
    if method == "normal":
        return normal_quantile(mean, std, q)
    if method == "chebyshev":
        return cantelli_quantile(mean, std, q)
    raise EstimationError(f"unknown quantile method {method!r}; use {METHODS}")
