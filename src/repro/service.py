"""A thread-safe concurrent query service over a shared synopsis catalog.

This is the serving front-end the ROADMAP's "heavy traffic" north star
asks for: many sessions issue SQL concurrently against one
:class:`~repro.relational.database.Database` whose sampling cost is
amortized through the :mod:`repro.store` catalog.  Three layers of
reuse, fastest first:

1. a **result cache** — the full answer of a previously-served
   (statement, seed) pair is returned without touching the engine;
2. the **synopsis catalog** — a stored sample that the algebra proves
   subsumes the query's sampling plan is served by exact reuse,
   predicate pushdown, or residual thinning;
3. **fresh execution** — a miss executes once and populates the
   catalog for everyone else.

Thread model: query execution itself is lock-free (numpy reads over an
immutable-by-convention catalog of tables); the service lock only
guards the result cache, the per-session bookkeeping, and table
mutations.  Mutations swap the table reference atomically and
invalidate the affected synopses, so in-flight queries see a
consistent snapshot and later queries never reuse stale samples.

``repro serve`` wraps this in a line-oriented CLI loop;
``repro serve --selftest`` runs a built-in concurrent workload and
verifies answers are identical across repeats.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database
    from repro.relational.table import Table
    from repro.store import CatalogStats, ReuseInfo

#: Default size of the per-service result cache (answers, not samples).
DEFAULT_RESULT_CACHE = 256


def default_seed(statement: str) -> int:
    """Stable per-statement seed, so identical statements are cacheable."""
    return zlib.crc32(statement.encode("utf-8")) & 0x7FFFFFFF


@dataclass(frozen=True)
class ServiceResponse:
    """One served statement: the printable answer plus provenance."""

    statement: str
    text: str
    values: dict[str, float] | None
    seed: int
    elapsed: float
    cached: bool = False
    reuse: "ReuseInfo | None" = field(default=None, repr=False)
    session: str | None = None


@dataclass
class ServiceStats:
    """Service-level counters (the catalog keeps its own).

    ``result_cache_hits`` counts answers actually read back from the
    result cache; ``coalesced_hits`` counts waiters that piggybacked on
    a concurrent in-flight execution of the same request — related but
    distinct reuse, reported separately.
    """

    queries: int = 0
    result_cache_hits: int = 0
    coalesced_hits: int = 0
    errors: int = 0

    def copy(self) -> "ServiceStats":
        return replace(self)


class ServiceSession:
    """A lightweight per-client handle onto a shared service."""

    def __init__(self, service: "QueryService", name: str) -> None:
        self.service = service
        self.name = name
        self.queries = 0

    def query(self, statement: str, *, seed: int | None = None) -> ServiceResponse:
        self.queries += 1
        return self.service.query(statement, seed=seed, session=self.name)


class QueryService:
    """Concurrent SQL serving over one database + shared synopsis catalog."""

    def __init__(
        self,
        db: "Database",
        *,
        level: float = 0.95,
        result_cache_size: int = DEFAULT_RESULT_CACHE,
    ) -> None:
        if db.synopses is None:
            db.attach_catalog()
        self.db = db
        self.level = float(level)
        self._lock = threading.Lock()
        self._results: OrderedDict[tuple, ServiceResponse] = OrderedDict()
        self._result_cache_size = int(result_cache_size)
        self._inflight: dict[tuple, Future] = {}
        self.stats = ServiceStats()

    # -- serving -----------------------------------------------------------

    def query(
        self,
        statement: str,
        *,
        seed: int | None = None,
        session: str | None = None,
    ) -> ServiceResponse:
        """Serve one SQL statement; deterministic for a given seed.

        With ``seed=None`` a stable per-statement seed is derived, so
        repeats of the same text hit the result cache and concurrent
        clients always observe one consistent answer per statement.
        Concurrent requests for the same (statement, seed) coalesce:
        one thread executes, the rest wait on its answer — the engine
        never runs the same request twice at once (dogpile protection),
        and all clients see the one realization.
        """
        # Only the edges are trimmed: collapsing interior whitespace
        # would rewrite runs of spaces inside SQL string literals.
        text = statement.strip()
        if not text:
            raise ReproError("empty statement")
        if seed is None:
            seed = default_seed(text)
        # The catalog epoch keys the cache generation: any table
        # mutation — via this service or directly on the database —
        # bumps it, so stale full answers can never be served.
        assert self.db.synopses is not None
        key = (text, int(seed), self.db.synopses.epoch)
        with self._lock:
            self.stats.queries += 1
            hit = self._results.get(key)
            if hit is not None:
                self._results.move_to_end(key)
                self.stats.result_cache_hits += 1
            else:
                pending = self._inflight.get(key)
                if pending is None:
                    pending = self._inflight[key] = Future()
                    owner = True
                else:
                    owner = False
        if hit is not None:
            return replace(hit, cached=True, session=session)
        if not owner:
            response = pending.result()  # raises what the owner raised
            with self._lock:
                self.stats.coalesced_hits += 1
            return replace(response, cached=True, session=session)
        try:
            response = self._execute(key)
        except BaseException as exc:
            with self._lock:
                self.stats.errors += 1
                self._inflight.pop(key, None)
            pending.set_exception(exc)
            raise
        with self._lock:
            self._results[key] = response
            while len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
            self._inflight.pop(key, None)
        pending.set_result(response)
        return replace(response, session=session)

    def _execute(self, key: tuple) -> ServiceResponse:
        """Run one (statement, seed) pair on the engine (no caching)."""
        from repro.cli import _format_result

        text, seed, _epoch = key
        start = time.perf_counter()
        result = self.db.sql(text, seed=seed)
        elapsed = time.perf_counter() - start
        return ServiceResponse(
            statement=text,
            text=_format_result(result, self.level),
            values=dict(result.values)
            if isinstance(getattr(result, "values", None), dict)
            else None,
            seed=int(seed),
            elapsed=elapsed,
            cached=False,
            reuse=getattr(result, "reuse", None),
        )

    def query_many(
        self, statements: Iterable[str], *, workers: int = 4
    ) -> list[ServiceResponse]:
        """Serve a batch concurrently, preserving submission order."""
        items = list(statements)
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=max(1, int(workers))) as pool:
            return list(pool.map(self.query, items))

    def session(self, name: str) -> ServiceSession:
        return ServiceSession(self, name)

    # -- administration ----------------------------------------------------

    def refresh_table(self, name: str, table: "Table") -> None:
        """Swap a table's contents and drop every answer derived from it.

        The result cache cannot tell which answers touched the table,
        so it is cleared wholesale; the synopsis catalog invalidates
        precisely (per-table versions).
        """
        with self._lock:
            self.db.replace_table(name, table)
            self._results.clear()

    def snapshot_stats(self) -> tuple[ServiceStats, "CatalogStats"]:
        with self._lock:
            service = self.stats.copy()
        assert self.db.synopses is not None
        return service, self.db.synopses.snapshot_stats()

    def stats_line(self) -> str:
        service, store = self.snapshot_stats()
        return (
            f"served {service.queries} "
            f"(result-cache {service.result_cache_hits}, "
            f"coalesced {service.coalesced_hits}, "
            f"store hits {store.hits}/{store.lookups} "
            f"[{store.exact_hits} exact, {store.pushdown_hits} pushdown, "
            f"{store.thin_hits} thin], "
            f"misses {store.misses}, evictions {store.evictions}, "
            f"invalidations {store.invalidations})"
        )


# ---------------------------------------------------------------------------
# The ``repro serve`` loop and its self-test workload.
# ---------------------------------------------------------------------------

#: Statements of the self-test mix: exact repeats, shared-child
#: aggregates, a thinnable lower-rate variant, and predicate pushdowns.
SELFTEST_STATEMENTS = (
    "SELECT SUM(l_extendedprice) AS rev, COUNT(*) AS n "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11)",
    "SELECT AVG(l_quantity) AS avg_qty "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11)",
    "SELECT SUM(l_extendedprice) AS rev "
    "FROM lineitem TABLESAMPLE (10 PERCENT) REPEATABLE (11)",
    "SELECT SUM(l_extendedprice) AS rev "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11) "
    "WHERE l_quantity > 25",
    "SELECT l_returnflag, SUM(l_quantity) AS qty "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11) "
    "GROUP BY l_returnflag",
    "SELECT SUM(o_totalprice) AS total "
    "FROM orders TABLESAMPLE (25 PERCENT) REPEATABLE (3)",
)


def serve_statements(
    service: QueryService,
    statements: Iterable[str],
    *,
    workers: int = 4,
    out: Callable[[str], Any] = print,
) -> int:
    """Serve a statement stream concurrently, printing in order.

    Failures are isolated per statement — one malformed line prints an
    error and the rest of the stream is still served.  Returns the
    number of statements answered successfully.
    """
    items = list(statements)
    served = 0
    with ThreadPoolExecutor(max_workers=max(1, int(workers))) as pool:
        futures = [pool.submit(service.query, s) for s in items]
        for statement, future in zip(items, futures):
            try:
                response = future.result()
            except ReproError as exc:
                out(f"-- [error] {statement}")
                out(f"error: {exc}")
                continue
            tag = (
                "result-cache"
                if response.cached
                else (response.reuse.kind if response.reuse else "fresh")
            )
            out(
                f"-- [{tag}, {response.elapsed * 1e3:.1f} ms] "
                f"{response.statement}"
            )
            out(response.text)
            served += 1
    out(f"-- {service.stats_line()}")
    return served


def selftest(
    *,
    workers: int = 4,
    scale: float = 0.02,
    seed: int = 0,
    repeats: int = 3,
    out: Callable[[str], Any] = print,
) -> bool:
    """Concurrent end-to-end check of the catalog + service stack.

    Runs the self-test workload ``repeats`` times across ``workers``
    threads against a shared catalog and verifies that (1) every
    statement's answer is identical on every repeat, (2) the store
    actually served reuse hits, and (3) the result cache engaged.
    """
    from repro.data.tpch import tpch_database

    db = tpch_database(scale=scale, seed=seed)
    db.attach_catalog()
    service = QueryService(db)
    # Warm the base synopsis so the concurrent storm has a stored
    # sample to subsume (otherwise every distinct statement can miss
    # simultaneously on the first wave and the hit check gets racy).
    warm = service.query(SELFTEST_STATEMENTS[0])
    workload = list(SELFTEST_STATEMENTS) * max(1, int(repeats))
    responses = service.query_many(workload, workers=max(2, int(workers)))
    responses.append(warm)
    by_statement: dict[str, str] = {}
    consistent = True
    for response in responses:
        previous = by_statement.setdefault(response.statement, response.text)
        if previous != response.text:
            consistent = False
            out(f"MISMATCH for {response.statement!r}")
    _, store = service.snapshot_stats()
    ok = (
        consistent
        and store.hits > 0
        and service.stats.result_cache_hits + service.stats.coalesced_hits > 0
        and service.stats.errors == 0
    )
    out(
        f"selftest {'ok' if ok else 'FAILED'}: "
        f"{len(responses)} statements across {max(2, int(workers))} "
        f"threads; {service.stats_line()}"
    )
    return ok
