"""A thread-safe concurrent query service over a shared synopsis catalog.

This is the serving front-end the ROADMAP's "heavy traffic" north star
asks for: many sessions issue SQL concurrently against one
:class:`~repro.relational.database.Database` whose sampling cost is
amortized through the :mod:`repro.store` catalog.  Three layers of
reuse, fastest first:

1. a **result cache** — the full answer of a previously-served
   (statement, seed) pair is returned without touching the engine;
2. the **synopsis catalog** — a stored sample that the algebra proves
   subsumes the query's sampling plan is served by exact reuse,
   predicate pushdown, or residual thinning;
3. **fresh execution** — a miss executes once and populates the
   catalog for everyone else.

Thread model: query execution itself is lock-free (numpy reads over an
immutable-by-convention catalog of tables); the service lock only
guards the result cache, the per-session bookkeeping, and table
mutations.  Mutations swap the table reference atomically and
invalidate the affected synopses, so in-flight queries see a
consistent snapshot and later queries never reuse stale samples.

``repro serve`` wraps this in a line-oriented CLI loop;
``repro serve --selftest`` runs a built-in concurrent workload and
verifies answers are identical across repeats.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ReproError
from repro.obs.metrics import REGISTRY, HistogramSnapshot, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Trace
    from repro.relational.database import Database
    from repro.relational.table import Table
    from repro.store import CatalogStats, ReuseInfo

#: Default size of the per-service result cache (answers, not samples).
DEFAULT_RESULT_CACHE = 256

#: Default bound on tracked sessions (LRU-evicted beyond this).
DEFAULT_MAX_SESSIONS = 1024


def default_seed(statement: str) -> int:
    """Stable per-statement seed, so identical statements are cacheable."""
    return zlib.crc32(statement.encode("utf-8")) & 0x7FFFFFFF


@dataclass(frozen=True)
class ServiceResponse:
    """One served statement: the printable answer plus provenance."""

    statement: str
    text: str
    values: dict[str, float] | None
    seed: int
    elapsed: float
    cached: bool = False
    reuse: "ReuseInfo | None" = field(default=None, repr=False)
    session: str | None = None
    trace: "Trace | None" = field(default=None, repr=False)


@dataclass
class ServiceStats:
    """Service-level counters (the catalog keeps its own).

    ``result_cache_hits`` counts answers actually read back from the
    result cache; ``coalesced_hits`` counts waiters that piggybacked on
    a concurrent in-flight execution of the same request — related but
    distinct reuse, reported separately.
    """

    queries: int = 0
    result_cache_hits: int = 0
    coalesced_hits: int = 0
    errors: int = 0
    sessions_evicted: int = 0

    def copy(self) -> "ServiceStats":
        return replace(self)


class ServiceSession:
    """A lightweight per-client handle onto a shared service."""

    def __init__(self, service: "QueryService", name: str) -> None:
        self.service = service
        self.name = name
        self.queries = 0

    def query(self, statement: str, *, seed: int | None = None) -> ServiceResponse:
        self.queries += 1
        return self.service.query(statement, seed=seed, session=self.name)


class QueryService:
    """Concurrent SQL serving over one database + shared synopsis catalog."""

    def __init__(
        self,
        db: "Database",
        *,
        level: float = 0.95,
        result_cache_size: int = DEFAULT_RESULT_CACHE,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
    ) -> None:
        if db.synopses is None:
            db.attach_catalog()
        self.db = db
        self.level = float(level)
        self._lock = threading.Lock()
        self._results: OrderedDict[tuple, ServiceResponse] = OrderedDict()
        self._result_cache_size = int(result_cache_size)
        self._inflight: dict[tuple, Future] = {}
        self._sessions: OrderedDict[str, ServiceSession] = OrderedDict()
        self._max_sessions = max(1, int(max_sessions))
        self.stats = ServiceStats()
        #: Per-service metrics (latency histograms by outcome); the
        #: process-wide :data:`~repro.obs.metrics.REGISTRY` keeps the
        #: store/engine counters shared across services.
        self.metrics = MetricsRegistry()

    # -- serving -----------------------------------------------------------

    def query(
        self,
        statement: str,
        *,
        seed: int | None = None,
        session: str | None = None,
    ) -> ServiceResponse:
        """Serve one SQL statement; deterministic for a given seed.

        With ``seed=None`` a stable per-statement seed is derived, so
        repeats of the same text hit the result cache and concurrent
        clients always observe one consistent answer per statement.
        Concurrent requests for the same (statement, seed) coalesce:
        one thread executes, the rest wait on its answer — the engine
        never runs the same request twice at once (dogpile protection),
        and all clients see the one realization.
        """
        start = time.perf_counter()
        # Only the edges are trimmed: collapsing interior whitespace
        # would rewrite runs of spaces inside SQL string literals.
        text = statement.strip()
        if not text:
            raise ReproError("empty statement")
        if seed is None:
            seed = default_seed(text)
        # The catalog epoch keys the cache generation: any table
        # mutation — via this service or directly on the database —
        # bumps it, so stale full answers can never be served.
        assert self.db.synopses is not None
        key = (text, int(seed), self.db.synopses.epoch)
        with self._lock:
            self.stats.queries += 1
            hit = self._results.get(key)
            if hit is not None:
                self._results.move_to_end(key)
                self.stats.result_cache_hits += 1
            else:
                pending = self._inflight.get(key)
                if pending is None:
                    pending = self._inflight[key] = Future()
                    owner = True
                else:
                    owner = False
        if hit is not None:
            self._observe_latency("result-cache", start)
            return replace(hit, cached=True, session=session)
        if not owner:
            response = pending.result()  # raises what the owner raised
            with self._lock:
                self.stats.coalesced_hits += 1
            self._observe_latency("coalesced", start)
            return replace(response, cached=True, session=session)
        try:
            response = self._execute(key)
        except BaseException as exc:
            with self._lock:
                self.stats.errors += 1
                self._inflight.pop(key, None)
            pending.set_exception(exc)
            self._observe_latency("error", start)
            raise
        with self._lock:
            self._results[key] = response
            while len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
            self._inflight.pop(key, None)
        pending.set_result(response)
        self._observe_latency("fresh", start)
        return replace(response, session=session)

    def _observe_latency(self, outcome: str, start: float) -> None:
        self.metrics.histogram(
            "repro_service_latency_seconds", outcome=outcome
        ).observe(time.perf_counter() - start)

    def _execute(self, key: tuple) -> ServiceResponse:
        """Run one (statement, seed) pair on the engine (no caching)."""
        from repro.cli import _format_result

        text, seed, _epoch = key
        start = time.perf_counter()
        result = self.db.sql(text, seed=seed)
        elapsed = time.perf_counter() - start
        return ServiceResponse(
            statement=text,
            text=_format_result(result, self.level),
            values=dict(result.values)
            if isinstance(getattr(result, "values", None), dict)
            else None,
            seed=int(seed),
            elapsed=elapsed,
            cached=False,
            reuse=getattr(result, "reuse", None),
            trace=getattr(result, "trace", None),
        )

    def query_many(
        self, statements: Iterable[str], *, workers: int = 4
    ) -> list[ServiceResponse]:
        """Serve a batch concurrently, preserving submission order."""
        items = list(statements)
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=max(1, int(workers))) as pool:
            return list(pool.map(self.query, items))

    def session(self, name: str) -> ServiceSession:
        """Get-or-create the named session handle (bounded registry).

        Sessions are tracked in an LRU so many-connection churn (one
        session per TCP connection, connections come and go) cannot
        grow service memory without bound: beyond ``max_sessions`` the
        least-recently-touched session record is evicted and counted in
        ``stats.sessions_evicted``.  An evicted name can reconnect —
        it simply gets a fresh handle with a zeroed query count.
        """
        with self._lock:
            existing = self._sessions.get(name)
            if existing is not None:
                self._sessions.move_to_end(name)
                return existing
            created = self._sessions[name] = ServiceSession(self, name)
            while len(self._sessions) > self._max_sessions:
                self._sessions.popitem(last=False)
                self.stats.sessions_evicted += 1
            return created

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def note_execution(self, count: int = 1) -> None:
        """Account engine executions driven by an external loop.

        The progressive serving tier runs the optimizer's pilot and
        escalation attempts directly against this service's database;
        each of those executions may probe the synopsis catalog.
        Recording them here — under the same lock, *before* the
        execution happens — preserves the snapshot invariant
        ``store.lookups <= service.queries`` that
        :meth:`snapshot_stats` guarantees for the plain query path.
        """
        with self._lock:
            self.stats.queries += int(count)

    # -- administration ----------------------------------------------------

    def refresh_table(self, name: str, table: "Table") -> None:
        """Swap a table's contents and drop every answer derived from it.

        The outgoing contents are frozen as a snapshot first
        (:meth:`~repro.relational.database.Database.update_table`), so
        clients can keep querying the previous state with ``AT
        VERSION n`` — and difference queries against it stay served by
        untouched snapshot synopses.  The result cache cannot tell
        which answers touched the table, so it is cleared wholesale;
        the synopsis catalog invalidates precisely (per-table
        versions).
        """
        with self._lock:
            self.db.update_table(name, table)
            self._results.clear()

    def snapshot_stats(self) -> tuple[ServiceStats, "CatalogStats"]:
        """One consistent snapshot of service and catalog counters.

        Both copies are taken under the service lock.  Every query
        increments ``stats.queries`` (under this lock) *before* its
        store lookup happens, so reading the catalog inside the same
        critical section guarantees ``store.lookups <= service.queries``
        in every snapshot — reading the two sides at different times
        (the old behavior) let a concurrent query's lookup land between
        the reads and break that invariant.
        """
        assert self.db.synopses is not None
        with self._lock:
            return self.stats.copy(), self.db.synopses.snapshot_stats()

    def latency_snapshot(self) -> HistogramSnapshot:
        """Serve latency over *all* outcomes, merged from the per-outcome
        histograms (merge is exact, so this equals one big histogram)."""
        merged = HistogramSnapshot.empty()
        snap = self.metrics.snapshot()
        for (name, _labels), value in snap.items():
            if name == "repro_service_latency_seconds" and isinstance(
                value, HistogramSnapshot
            ):
                merged = merged.merge(value)
        return merged

    def metrics_text(self) -> str:
        """Prometheus text exposition: service, store, and engine metrics."""
        service, store = self.snapshot_stats()
        reg = MetricsRegistry()
        reg.counter("repro_service_queries_total").inc(service.queries)
        reg.counter("repro_service_result_cache_hits_total").inc(
            service.result_cache_hits
        )
        reg.counter("repro_service_coalesced_hits_total").inc(
            service.coalesced_hits
        )
        reg.counter("repro_service_errors_total").inc(service.errors)
        reg.counter("repro_service_sessions_evicted_total").inc(
            service.sessions_evicted
        )
        reg.gauge("repro_service_sessions").set(float(self.session_count))
        reg.counter("repro_catalog_lookups_total").inc(store.lookups)
        reg.counter("repro_catalog_hits_total", mode="exact").inc(
            store.exact_hits
        )
        reg.counter("repro_catalog_hits_total", mode="pushdown").inc(
            store.pushdown_hits
        )
        reg.counter("repro_catalog_hits_total", mode="thin").inc(
            store.thin_hits
        )
        reg.counter("repro_catalog_misses_total").inc(store.misses)
        reg.counter("repro_catalog_puts_total").inc(store.puts)
        reg.counter("repro_catalog_evictions_total").inc(store.evictions)
        reg.counter("repro_catalog_invalidations_total").inc(
            store.invalidations
        )
        reg.gauge("repro_catalog_entries").set(float(len(self.db.synopses)))
        reg.gauge("repro_catalog_resident_bytes").set(
            float(self.db.synopses.resident_bytes)
        )
        parts = [reg.render_prometheus()]
        latency = self.metrics.render_prometheus()
        if latency:
            parts.append(latency)
        engine = REGISTRY.render_prometheus()
        if engine:
            parts.append(engine)
        return "\n".join(parts)

    def stats_line(self) -> str:
        service, store = self.snapshot_stats()
        latency = self.latency_snapshot()
        quantiles = (
            f", p50 {latency.quantile(0.5) * 1e3:.1f} ms "
            f"p99 {latency.quantile(0.99) * 1e3:.1f} ms"
            if latency.count
            else ""
        )
        return (
            f"served {service.queries} "
            f"(result-cache {service.result_cache_hits}, "
            f"coalesced {service.coalesced_hits}, "
            f"store hits {store.hits}/{store.lookups} "
            f"[{store.exact_hits} exact, {store.pushdown_hits} pushdown, "
            f"{store.thin_hits} thin], "
            f"misses {store.misses}, evictions {store.evictions}, "
            f"invalidations {store.invalidations}, "
            f"sessions {self.session_count} "
            f"(evicted {service.sessions_evicted}){quantiles})"
        )


# ---------------------------------------------------------------------------
# The ``repro serve`` loop and its self-test workload.
# ---------------------------------------------------------------------------

#: Statements of the self-test mix: exact repeats, shared-child
#: aggregates, a thinnable lower-rate variant, and predicate pushdowns.
SELFTEST_STATEMENTS = (
    "SELECT SUM(l_extendedprice) AS rev, COUNT(*) AS n "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11)",
    "SELECT AVG(l_quantity) AS avg_qty "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11)",
    "SELECT SUM(l_extendedprice) AS rev "
    "FROM lineitem TABLESAMPLE (10 PERCENT) REPEATABLE (11)",
    "SELECT SUM(l_extendedprice) AS rev "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11) "
    "WHERE l_quantity > 25",
    "SELECT l_returnflag, SUM(l_quantity) AS qty "
    "FROM lineitem TABLESAMPLE (20 PERCENT) REPEATABLE (11) "
    "GROUP BY l_returnflag",
    "SELECT SUM(o_totalprice) AS total "
    "FROM orders TABLESAMPLE (25 PERCENT) REPEATABLE (3)",
)


def serve_statements(
    service: QueryService,
    statements: Iterable[str],
    *,
    workers: int = 4,
    out: Callable[[str], Any] = print,
) -> int:
    """Serve a statement stream concurrently, printing in order.

    Failures are isolated per statement — one malformed line prints an
    error and the rest of the stream is still served.  Returns the
    number of statements answered successfully.

    Lines starting with a backslash are service commands, answered at
    their position in the output stream (they see whatever concurrent
    statements have completed by then): ``\\stats`` prints the one-line
    counter summary with latency quantiles, ``\\metrics`` the full
    Prometheus exposition.
    """
    # The per-statement logic (serving, tagging, error isolation) and
    # the \stats/\metrics commands are the network tier's request
    # handler — one implementation for stdin and TCP alike.
    from repro.serve.handler import RequestHandler

    handler = RequestHandler(service)
    items = list(statements)
    served = 0
    with ThreadPoolExecutor(max_workers=max(1, int(workers))) as pool:
        futures = [
            None if s.startswith("\\") else pool.submit(handler.serve_text, s)
            for s in items
        ]
        for statement, future in zip(items, futures):
            if future is None:
                out(handler.command_text(statement))
                continue
            lines, ok = future.result()
            for line in lines:
                out(line)
            served += ok
    out(f"-- {service.stats_line()}")
    return served


def selftest(
    *,
    workers: int = 4,
    scale: float = 0.02,
    seed: int = 0,
    repeats: int = 3,
    out: Callable[[str], Any] = print,
) -> bool:
    """Concurrent end-to-end check of the catalog + service stack.

    Runs the self-test workload ``repeats`` times across ``workers``
    threads against a shared catalog and verifies that (1) every
    statement's answer is identical on every repeat, (2) the store
    actually served reuse hits, and (3) the result cache engaged.
    """
    from repro.data.tpch import tpch_database

    db = tpch_database(scale=scale, seed=seed)
    db.attach_catalog()
    service = QueryService(db)
    # Warm the base synopsis so the concurrent storm has a stored
    # sample to subsume (otherwise every distinct statement can miss
    # simultaneously on the first wave and the hit check gets racy).
    warm = service.query(SELFTEST_STATEMENTS[0])
    workload = list(SELFTEST_STATEMENTS) * max(1, int(repeats))
    responses = service.query_many(workload, workers=max(2, int(workers)))
    responses.append(warm)
    by_statement: dict[str, str] = {}
    consistent = True
    for response in responses:
        previous = by_statement.setdefault(response.statement, response.text)
        if previous != response.text:
            consistent = False
            out(f"MISMATCH for {response.statement!r}")
    stats, store = service.snapshot_stats()
    ok = (
        consistent
        and store.hits > 0
        and stats.result_cache_hits + stats.coalesced_hits > 0
        and stats.errors == 0
    )
    out(
        f"selftest {'ok' if ok else 'FAILED'}: "
        f"{len(responses)} statements across {max(2, int(workers))} "
        f"threads; {service.stats_line()}"
    )
    return ok
