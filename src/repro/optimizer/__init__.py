"""Cost-based sampling-plan optimizer (error-budget queries).

The subsystem that turns an accuracy target into the cheapest sampling
plan that meets it, built on the paper's central observation that one
pilot execution prices *every* candidate sampling design:

* :mod:`repro.optimizer.budget` — the ``WITHIN p % CONFIDENCE c``
  accuracy contract;
* :mod:`repro.optimizer.candidates` — SOA-equivalent plan variants
  (sampling families × rate ladder × join orders);
* :mod:`repro.optimizer.cost` — micro-probe-calibrated cost model;
* :mod:`repro.optimizer.predictor` — pilot-sample variance prediction
  (shared with the Section 8 advisor);
* :mod:`repro.optimizer.chooser` — the optimizer proper, with the
  adaptive rate-escalation loop.
"""

from repro.optimizer.budget import ErrorBudget
from repro.optimizer.candidates import (
    Assignment,
    PlanCandidate,
    QuerySkeleton,
    decompose,
    enumerate_assignments,
    escalate_methods,
    join_orders,
    max_rate,
    reusable_methods,
)
from repro.optimizer.cost import CostEstimate, CostModel
from repro.optimizer.predictor import (
    VariancePredictor,
    combined_gus,
    pilot_moments,
)
from repro.optimizer.chooser import (
    AttemptRecord,
    OptimizedResult,
    OptimizerReport,
    SamplingPlanOptimizer,
    ScoredCandidate,
    optimize,
)

__all__ = [
    "Assignment",
    "ErrorBudget",
    "PlanCandidate",
    "QuerySkeleton",
    "decompose",
    "enumerate_assignments",
    "escalate_methods",
    "join_orders",
    "max_rate",
    "reusable_methods",
    "CostEstimate",
    "CostModel",
    "VariancePredictor",
    "combined_gus",
    "pilot_moments",
    "AttemptRecord",
    "OptimizedResult",
    "OptimizerReport",
    "SamplingPlanOptimizer",
    "ScoredCandidate",
    "optimize",
]
