"""Plan cost model, calibrated per database with micro-probes.

Candidates are compared on a simple but honest model of this engine's
executor: every base table is scanned in full (Bernoulli/WOR filters
still read every row), every intermediate row costs one unit of
row-processing work, and joins pay for both inputs plus the output
they materialize.  Cardinalities flow bottom-up — sampling scales rows
by the method's first-order inclusion probability ``a``, equi-joins use
the classic ``|L|·|R| / max(ndv(k_L), ndv(k_R))`` uniform-containment
estimate with distinct counts measured on the actual base tables.

Two machine-specific constants turn row counts into predicted seconds:
the per-row cost of a vectorized scan/filter pass and of a sort-based
join probe.  They are measured **once per database** by timing two
small numpy micro-probes (:meth:`CostModel.calibrate`), so cost
rankings reflect the hardware the query will actually run on.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError
from repro.obs.metrics import REGISTRY
from repro.relational import plan as p
from repro.relational.executor import join_indices
from repro.relational.table import Table

#: Rows used by each calibration micro-probe.
PROBE_ROWS = 65_536

#: Selectivity charged per residual (non-join) predicate.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Share of a plan's work the chunked pipeline runs inside parallel
#: chunk tasks (scan, filter, project, probe, gather); the remainder —
#: driver-side fold of per-chunk moment state and task dispatch — is
#: serial, which is what keeps the speedup Amdahl-bounded.
PARALLEL_FRACTION = 0.92

#: The pipeline hash-partitions a join's build side into at most this
#: many buckets (mirrors the executor's cap).
MAX_BUILD_PARTITIONS = 16


@dataclass(frozen=True)
class CostEstimate:
    """Predicted work for one candidate plan.

    ``workers`` records the partition parallelism the prediction
    assumed.  ``build_rows_max`` is the largest join build input the
    plan materializes, and ``build_rows_per_partition`` the same after
    hash-partitioning across the pipeline's build buckets — the number
    that bounds a worker's resident build state.
    """

    rows_scanned: float
    rows_joined: float
    seconds: float
    workers: int = 1
    build_rows_max: float = 0.0
    build_rows_per_partition: float = 0.0

    @property
    def rows_total(self) -> float:
        return self.rows_scanned + self.rows_joined

    def describe(self) -> str:
        text = (
            f"{self.rows_total:,.0f} rows "
            f"(~{self.seconds * 1e3:.2f} ms predicted"
        )
        if self.workers > 1:
            text += f" @ {self.workers} workers"
        return text + ")"


class CostModel:
    """Cardinality + calibrated-constant cost estimates for plans."""

    def __init__(
        self,
        table_sizes: Mapping[str, int],
        column_ndv: Mapping[str, int],
        *,
        scan_seconds_per_row: float = 5e-9,
        join_seconds_per_row: float = 3e-8,
        selectivity: float = DEFAULT_SELECTIVITY,
    ) -> None:
        self.table_sizes = dict(table_sizes)
        self.column_ndv = dict(column_ndv)
        self.scan_seconds_per_row = float(scan_seconds_per_row)
        self.join_seconds_per_row = float(join_seconds_per_row)
        self.selectivity = float(selectivity)

    # -- calibration -----------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        tables: Mapping[str, Table],
        *,
        probe_rows: int = PROBE_ROWS,
        repeats: int = 3,
    ) -> "CostModel":
        """Measure per-row constants and collect base-table statistics.

        The scan probe times a vectorized compare-and-filter pass; the
        join probe times :func:`~repro.relational.executor.join_indices`
        on foreign-key-shaped data.  Taking the best of ``repeats``
        keeps scheduler noise out of the constants.
        """
        t_calibrate = time.perf_counter()
        values = np.linspace(0.0, 1.0, probe_rows)
        keys = np.arange(probe_rows, dtype=np.int64) % (probe_rows // 8)

        def best(fn) -> float:
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        scan_s = best(lambda: values[values > 0.5]) / probe_rows
        right = keys[: probe_rows // 4]
        join_s = best(lambda: join_indices(keys, right))
        # Charge the constant per touched row: both inputs plus the
        # output the probe actually emits (measured, not assumed — the
        # key repetition factor makes the output much larger than the
        # right side).
        out_rows = int(join_indices(keys, right)[0].size)
        join_rows = probe_rows + right.size + out_rows
        ndv = {
            col: int(np.unique(np.asarray(table.columns[col])).size)
            for table in tables.values()
            for col in table.schema.names
        }
        REGISTRY.gauge("repro_cost_scan_seconds_per_row").set(
            max(scan_s, 1e-12)
        )
        REGISTRY.gauge("repro_cost_join_seconds_per_row").set(
            max(join_s / join_rows, 1e-12)
        )
        REGISTRY.histogram(
            "repro_optimizer_seconds", stage="calibrate"
        ).observe(time.perf_counter() - t_calibrate)
        return cls(
            {name: t.n_rows for name, t in tables.items()},
            ndv,
            scan_seconds_per_row=max(scan_s, 1e-12),
            join_seconds_per_row=max(join_s / join_rows, 1e-12),
        )

    # -- estimation ------------------------------------------------------

    def estimate(
        self, plan: p.PlanNode, *, workers: int = 1
    ) -> CostEstimate:
        """Walk the plan bottom-up, accumulating predicted work.

        ``workers`` models partition-parallel execution on the chunked
        pipeline: per-chunk work (scans, filters, probes, output
        gathers) divides across the *effective* workers — capped by the
        CPUs this process may use, so the model never promises speedup
        the machine cannot deliver — while the driver-side merge share
        stays serial (Amdahl).  ``workers=1`` reproduces the serial
        model exactly.
        """
        state = {"scanned": 0.0, "joined": 0.0, "build_max": 0.0}
        self._rows(plan, state)
        seconds = (
            state["scanned"] * self.scan_seconds_per_row
            + state["joined"] * self.join_seconds_per_row
        )
        workers = max(1, int(workers))
        build_partitions = min(workers, MAX_BUILD_PARTITIONS)
        if workers > 1:
            from repro.parallel import available_cpus

            effective = max(1, min(workers, available_cpus()))
            seconds = seconds * (
                (1.0 - PARALLEL_FRACTION) + PARALLEL_FRACTION / effective
            )
        return CostEstimate(
            state["scanned"],
            state["joined"],
            seconds,
            workers=workers,
            build_rows_max=state["build_max"],
            build_rows_per_partition=state["build_max"] / build_partitions,
        )

    def reuse_estimate(self, stored_rows: float) -> CostEstimate:
        """Cost of serving a query from a stored synopsis.

        Reuse pays one vectorized pass over the stored sample (residual
        predicate masks and/or lineage-hash thinning) — no base-table
        scan, no join.  This is what makes cached candidates
        near-zero-cost in the plan ranking.
        """
        rows = max(0.0, float(stored_rows))
        return CostEstimate(
            rows_scanned=rows,
            rows_joined=0.0,
            seconds=rows * self.scan_seconds_per_row,
        )

    def _rows(self, node: p.PlanNode, state: dict[str, float]) -> float:
        if isinstance(node, p.Scan):
            n = float(self.table_sizes.get(node.table_name, 0))
            state["scanned"] += n
            return n
        if isinstance(node, p.TableSample):
            n = self._rows(node.child, state)
            a = node.method.gus(
                node.child.table_name,
                self.table_sizes.get(node.child.table_name, 0),
            ).a
            state["scanned"] += n  # the filter pass touches every row
            return n * a
        if isinstance(node, p.LineageSample):
            n = self._rows(node.child, state)
            state["scanned"] += n
            return n * node.sampler.gus().a
        if isinstance(node, p.Select):
            n = self._rows(node.child, state)
            state["scanned"] += n
            return n * self.selectivity
        if isinstance(node, p.Project):
            n = self._rows(node.child, state)
            state["scanned"] += n
            return n
        if isinstance(node, p.Aggregate):
            n = self._rows(node.child, state)
            state["scanned"] += n
            return 1.0
        if isinstance(node, p.Join):
            left = self._rows(node.left, state)
            right = self._rows(node.right, state)
            out = self._join_rows(left, right, node.left_keys, node.right_keys)
            state["joined"] += left + right + out
            # The pipeline materializes the left side as its hash-
            # partitioned build; the probe side streams.
            state["build_max"] = max(state["build_max"], left)
            return out
        if isinstance(node, p.CrossProduct):
            left = self._rows(node.left, state)
            right = self._rows(node.right, state)
            out = left * right
            state["joined"] += left + right + out
            # Cross products stream the left side and hold the right.
            state["build_max"] = max(state["build_max"], right)
            return out
        if isinstance(node, (p.Union, p.Intersect)):
            left = self._rows(node.left, state)
            right = self._rows(node.right, state)
            state["joined"] += left + right
            return left + right if isinstance(node, p.Union) else min(left, right)
        raise PlanError(f"cost model cannot walk {type(node).__name__}")

    def _join_rows(
        self,
        left_rows: float,
        right_rows: float,
        left_keys: tuple[str, ...],
        right_keys: tuple[str, ...],
    ) -> float:
        """Uniform-containment estimate, ndv from the base tables."""
        denom = 1.0
        for lk, rk in zip(left_keys, right_keys):
            denom = max(
                denom,
                float(self.column_ndv.get(lk, 1)),
                float(self.column_ndv.get(rk, 1)),
            )
        return left_rows * right_rows / denom
