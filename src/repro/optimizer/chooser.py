"""The plan chooser: budget in, cheapest qualifying plan out.

Ties the subsystem together, closing the loop from a planned query to
a guaranteed-accuracy answer:

1. :func:`~repro.optimizer.candidates.decompose` the query into its
   skeleton and enumerate (method assignment × join order) variants;
2. execute one cheap **pilot** (hash-Bernoulli on every sampled
   relation) and build a
   :class:`~repro.optimizer.predictor.VariancePredictor` from it;
3. score every candidate — predicted relative CI half-width from the
   predictor, predicted cost from the calibrated
   :class:`~repro.optimizer.cost.CostModel` — and choose the cheapest
   candidate whose prediction meets the
   :class:`~repro.optimizer.budget.ErrorBudget`;
4. execute the chosen plan through the SBox; if the *realized* interval
   misses the budget (pilot noise, unlucky draw), **escalate**: retry
   at geometrically increased rates, with hash-keyed filters reusing
   every already-drawn tuple (nested samples), until the budget is met
   or the plan has escalated to a full scan.

``EXPLAIN SAMPLING`` is step 1–3 without execution:
:meth:`SamplingPlanOptimizer.report` returns the ranked candidate
table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from time import perf_counter

from repro.errors import PlanError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import get_tracer, maybe_span
from repro.optimizer.budget import ErrorBudget
from repro.optimizer.candidates import (
    PlanCandidate,
    QuerySkeleton,
    methods_label,
    decompose,
    enumerate_assignments,
    escalate_methods,
    is_fully_escalated,
    join_orders,
    max_rate,
    relation_seed,
    reusable_methods,
)
from repro.optimizer.cost import CostEstimate, CostModel
from repro.optimizer.predictor import VariancePredictor, combined_gus
from repro.core.gus import GUSParams
from repro.core.sbox import QueryResult
from repro.relational.plan import Aggregate
from repro.sampling import LineageHashBernoulli

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database

#: Default pilot sampling rate (per relation, hash-Bernoulli).
DEFAULT_PILOT_RATE = 0.1


@dataclass(frozen=True)
class ScoredCandidate:
    """One candidate with its predictions attached.

    ``reused`` marks candidates whose sampling plan is subsumed by a
    stored synopsis: their cost is the near-zero reuse cost (one pass
    over the stored sample) rather than a fresh scan-and-join.
    """

    candidate: PlanCandidate
    params: GUSParams
    predicted_relative_half_width: float
    cost: CostEstimate
    feasible: bool
    reused: bool = False

    @property
    def name(self) -> str:
        return self.candidate.name


@dataclass(frozen=True)
class AttemptRecord:
    """One execution of the escalation loop.

    ``rate`` is the largest per-relation sampling fraction of the
    attempt's method assignment — the "how much data so far" label a
    progressive client displays next to the tightening interval.
    """

    attempt: int
    methods_label: str
    n_sample: int
    realized_relative_half_width: float
    met: bool
    rate: float = float("nan")


@dataclass(frozen=True)
class OptimizerReport:
    """The ranked candidate table (the ``EXPLAIN SAMPLING`` payload).

    ``scored`` is ranked best-first: feasible candidates by predicted
    cost, then infeasible ones by predicted interval width.  ``naive``
    is the baseline the optimizer must beat — the cheapest *uniform*
    Bernoulli assignment (same rate everywhere, original join order)
    predicted to meet the same budget.
    """

    budget: ErrorBudget
    scored: tuple[ScoredCandidate, ...]
    chosen: ScoredCandidate
    naive: ScoredCandidate | None
    pilot_rows: int

    @property
    def cost_ratio(self) -> float:
        """Chosen cost / naive-uniform cost (< 1 means the win is real)."""
        if self.naive is None or self.naive.cost.seconds <= 0.0:
            return math.nan
        return self.chosen.cost.seconds / self.naive.cost.seconds

    def table(self, limit: int = 15) -> str:
        """Plain-text ranking for ``EXPLAIN SAMPLING`` output."""
        header = (
            f"{'rank':<6}{'candidate':<44}{'join order':<28}"
            f"{'pred. cost rows':>16}{'pred. ±':>10}{'meets':>7}"
        )
        lines = [
            f"budget: {self.budget.describe()}  "
            f"(pilot: {self.pilot_rows} rows)",
            header,
            "-" * len(header),
        ]
        for rank, sc in enumerate(self.scored[:limit], start=1):
            marker = "*" if sc is self.chosen else " "
            width = sc.predicted_relative_half_width
            width_text = f"{width:>10.2%}" if math.isfinite(width) else f"{'inf':>10}"
            name = sc.name + (" [cached]" if sc.reused else "")
            lines.append(
                f"{marker}{rank:<5}{name:<44}"
                f"{'⋈'.join(sc.candidate.order):<28}"
                f"{sc.cost.rows_total:>16,.0f}{width_text}"
                f"{'yes' if sc.feasible else 'no':>7}"
            )
        if len(self.scored) > limit:
            lines.append(f"... ({len(self.scored)} candidates scored)")
        lines.append(
            f"chosen: {self.chosen.name} "
            f"[{'⋈'.join(self.chosen.candidate.order)}]"
            + (
                f", {1.0 / self.cost_ratio:.1f}x cheaper than uniform"
                if math.isfinite(self.cost_ratio) and self.cost_ratio < 1.0
                else ""
            )
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class OptimizedResult:
    """Everything an error-budget query returns."""

    report: OptimizerReport
    result: QueryResult
    attempts: tuple[AttemptRecord, ...] = field(repr=False)

    @property
    def met(self) -> bool:
        return self.attempts[-1].met

    def __getitem__(self, alias: str) -> float:
        return self.result.values[alias]

    def outcome_line(self) -> str:
        """The one-line verdict shared by :meth:`summary` and the CLI."""
        last = self.attempts[-1]
        chosen = self.report.chosen
        return (
            f"plan: {chosen.name} [{'⋈'.join(chosen.candidate.order)}]; "
            f"budget {self.report.budget.describe()} "
            f"{'met' if last.met else 'MISSED'} after "
            f"{len(self.attempts)} attempt(s), realized "
            f"±{last.realized_relative_half_width:.2%}"
        )

    def summary(self) -> str:
        return (
            self.result.summary(self.report.budget.level)
            + "\n"
            + self.outcome_line()
        )


class SamplingPlanOptimizer:
    """Cost-based sampling-plan optimizer over one database."""

    def __init__(
        self,
        db: "Database",
        *,
        cost_model: CostModel | None = None,
        pilot_rate: float = DEFAULT_PILOT_RATE,
        seed: int = 0,
        max_escalations: int = 4,
        escalation_factor: float = 2.0,
        order_limit: int = 12,
        workers: int | None = None,
    ) -> None:
        self.db = db
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel.calibrate(db.tables)
        )
        # Candidates are costed for the engine that will actually run
        # them: the database's resolved worker count (partition-aware
        # Amdahl model) unless overridden here.
        self.workers = (
            int(workers)
            if workers is not None
            else (db._resolve_workers(None) or 1)
        )
        self.pilot_rate = float(pilot_rate)
        self.seed = int(seed)
        self.max_escalations = int(max_escalations)
        self.escalation_factor = float(escalation_factor)
        self.order_limit = int(order_limit)

    # -- pilot ------------------------------------------------------------

    def _column_owner(self) -> dict[str, str]:
        owner: dict[str, str] = {}
        for name, table in self.db.tables.items():
            for column in table.schema.names:
                owner[column] = name
        return owner

    def pilot_relation_rate(self, skeleton: QuerySkeleton) -> float:
        """Per-relation rates multiply through the join (Prop 6), so take
        the k-th root: the pilot retains ~pilot_rate of the *joined*
        result however many relations are sampled."""
        return self.pilot_rate ** (1.0 / max(1, len(skeleton.sampled)))

    def _pilot(self, skeleton: QuerySkeleton, seed: int) -> VariancePredictor:
        # The pilot runs through the database's SBox, so with a synopsis
        # catalog attached its sample is stored and reused like any
        # other — repeated report()/optimize()/EXPLAIN SAMPLING calls
        # skip re-piloting, and a stored pilot can later serve plain
        # queries by thinning (a valid GUS sample with rescaled
        # coefficients; the algebra does not care who drew it).
        per_rel = self.pilot_relation_rate(skeleton)
        pilot_methods = {
            rel: LineageHashBernoulli(
                per_rel, seed=relation_seed(seed + 1, rel)
            )
            for rel in skeleton.sampled
        }
        pilot_plan = skeleton.build(methods=pilot_methods)
        result = self.db.sbox().run(pilot_plan, rng=self.db.rng(seed))
        return VariancePredictor.from_pilot(result)

    # -- scoring ----------------------------------------------------------

    def _matcher(self):
        """A reuse matcher over the database's synopsis catalog, if any."""
        synopses = getattr(self.db, "synopses", None)
        if synopses is None:
            return None
        from repro.store import ReuseMatcher

        return ReuseMatcher(synopses)

    def _candidate_cost(
        self, candidate: PlanCandidate, sizes, matcher, draw_token
    ) -> tuple[CostEstimate, bool]:
        """Predicted cost, discounted when a stored synopsis subsumes it.

        A cached candidate costs one pass over the stored sample (the
        matcher will serve it by pushdown/thinning at execution time),
        which is what lets the chooser prefer already-paid-for samples
        over fresh scans.  ``draw_token`` identifies the RNG stream the
        execution will consume, so RNG-drawn designs match exactly the
        synopses their execution would actually hit.
        """
        plan = candidate.plan()
        if matcher is not None:
            from repro.store import canonicalize

            canon = canonicalize(plan.child, sizes, draw_token=draw_token)
            if canon is not None:
                decision = matcher.peek(canon)
                if decision is not None:
                    return (
                        self.cost_model.reuse_estimate(
                            decision.synopsis.n_rows
                        ),
                        True,
                    )
        return (
            self.cost_model.estimate(plan, workers=self.workers),
            False,
        )

    def report(
        self,
        plan: Aggregate,
        budget: ErrorBudget,
        *,
        seed: int | None = None,
        on_pilot: "Callable[[QueryResult, float], None] | None" = None,
        before_execute: "Callable[[str], None] | None" = None,
    ) -> OptimizerReport:
        """Enumerate, score, and rank — the ``EXPLAIN SAMPLING`` path.

        ``on_pilot`` (if given) receives the executed pilot result and
        its per-relation sampling rate — the progressive serving tier's
        first streamed estimate.  ``before_execute`` is called with a
        stage label before any engine execution; raising from it aborts
        the run (cooperative cancellation).  Neither hook touches the
        RNG, so hooked and hook-free runs stay bit-identical.
        """
        seed = self.seed if seed is None else int(seed)
        skeleton = decompose(plan, self._column_owner())
        if not skeleton.sampled:
            raise PlanError(
                "the query samples nothing; an exact plan trivially meets "
                "any budget (run it directly)"
            )
        tracer = get_tracer()
        t_pilot = perf_counter()
        if before_execute is not None:
            before_execute("pilot")
        with maybe_span(tracer, "optimizer.pilot", kind="optimizer") as sp:
            predictor = self._pilot(skeleton, seed)
            sp.attrs["pilot_rows"] = predictor.pilot.sample.n_rows
        REGISTRY.histogram(
            "repro_optimizer_seconds", stage="pilot"
        ).observe(perf_counter() - t_pilot)
        if on_pilot is not None:
            on_pilot(predictor.pilot, self.pilot_relation_rate(skeleton))
        sizes = self.db.sizes()
        schema = frozenset(skeleton.relations)
        orders = join_orders(skeleton, limit=self.order_limit)
        target = budget.target_relative_std
        critical = budget.critical_value
        matcher = self._matcher()
        draw_token = None
        if matcher is not None:
            from repro.store.fingerprint import draw_token_of

            # The escalation loop's first attempt executes with
            # db.rng(seed): that stream's identity is what any stored
            # RNG-drawn synopsis must match to be served.
            draw_token = draw_token_of(self.db.rng(seed))

        scored: list[ScoredCandidate] = []
        naive: ScoredCandidate | None = None
        n_scored = 0
        t_score = perf_counter()
        with maybe_span(tracer, "optimizer.score", kind="optimizer") as sp:
            for assignment in enumerate_assignments(
                skeleton, sizes, seed=seed
            ):
                label, methods = assignment.label, assignment.methods
                params = combined_gus(methods, sizes, sorted(schema))
                rel_std = predictor.predicted_relative_std(params)
                feasible = rel_std <= target
                # Variance is join-order independent; cost is not.  Keep
                # the cheapest order per assignment (the ranking only
                # ever needs the per-assignment winner).
                best: ScoredCandidate | None = None
                for order in orders:
                    candidate = PlanCandidate(
                        label, order, methods, skeleton
                    )
                    cost, reused = self._candidate_cost(
                        candidate, sizes, matcher, draw_token
                    )
                    n_scored += 1
                    sc = ScoredCandidate(
                        candidate=candidate,
                        params=params,
                        predicted_relative_half_width=rel_std * critical,
                        cost=cost,
                        feasible=feasible,
                        reused=reused,
                    )
                    if best is None or cost.seconds < best.cost.seconds:
                        best = sc
                    # The naive baseline is what a rate-knob-only system
                    # would run: uniform Bernoulli, the query's own join
                    # order.  Track it before the cheapest-order pruning
                    # so reordering wins don't erase the comparison
                    # point.
                    if (
                        feasible
                        and order == skeleton.relations
                        and assignment.uniform_bernoulli
                        and (
                            naive is None
                            or cost.seconds < naive.cost.seconds
                        )
                    ):
                        naive = sc
                assert best is not None
                scored.append(best)
            sp.attrs["candidates_scored"] = n_scored
            sp.attrs["assignments"] = len(scored)
        REGISTRY.counter(
            "repro_optimizer_candidates_scored_total"
        ).inc(n_scored)
        REGISTRY.histogram(
            "repro_optimizer_seconds", stage="score"
        ).observe(perf_counter() - t_score)

        scored.sort(
            key=lambda sc: (
                not sc.feasible,
                sc.cost.seconds if sc.feasible
                else sc.predicted_relative_half_width,
            )
        )
        return OptimizerReport(
            budget=budget,
            scored=tuple(scored),
            chosen=scored[0],
            naive=naive,
            pilot_rows=predictor.pilot.sample.n_rows,
        )

    # -- optimization -----------------------------------------------------

    def optimize(
        self,
        plan: Aggregate,
        budget: ErrorBudget,
        *,
        seed: int | None = None,
        on_pilot: "Callable[[QueryResult, float], None] | None" = None,
        on_attempt: (
            "Callable[[AttemptRecord, QueryResult], None] | None"
        ) = None,
        before_execute: "Callable[[str], None] | None" = None,
    ) -> OptimizedResult:
        """Choose, execute, and escalate until the budget is realized.

        The hooks expose the loop's intermediate state to streaming
        callers: ``on_pilot`` fires after the pilot execution,
        ``on_attempt`` after every escalation attempt (with its full
        :class:`~repro.core.sbox.QueryResult`), and ``before_execute``
        before each engine run — raising from it aborts the loop, which
        is how a serving deadline or client disconnect cancels an
        in-flight ladder between (never inside) executions.  Hooks only
        observe results; the RNG stream, the chosen plan, and the final
        answer are bit-identical to a hook-free ``optimize`` call.
        """
        seed = self.seed if seed is None else int(seed)
        report = self.report(
            plan,
            budget,
            seed=seed,
            on_pilot=on_pilot,
            before_execute=before_execute,
        )
        skeleton = report.chosen.candidate.skeleton
        order = report.chosen.candidate.order
        sizes = self.db.sizes()
        methods = reusable_methods(report.chosen.candidate.methods, seed)

        tracer = get_tracer()
        attempts: list[AttemptRecord] = []
        for attempt in range(self.max_escalations + 1):
            if before_execute is not None:
                before_execute(f"attempt[{attempt}]")
            executable = skeleton.build(order, methods)
            with maybe_span(
                tracer,
                f"optimizer.attempt[{attempt}]",
                kind="optimizer",
                methods=methods_label(methods),
            ) as sp:
                result = self.db.sbox().run(
                    executable, rng=self.db.rng(seed + attempt)
                )
                realized = self._realized(result, budget)
                met = all(
                    budget.met_by(result.estimates[alias])
                    for alias in self._budget_aliases(result)
                )
                sp.attrs["n_sample"] = result.sample.n_rows
                sp.attrs["met"] = met
            record = AttemptRecord(
                attempt=attempt,
                methods_label=methods_label(methods),
                n_sample=result.sample.n_rows,
                realized_relative_half_width=realized,
                met=met,
                rate=max_rate(methods, sizes),
            )
            attempts.append(record)
            if on_attempt is not None:
                on_attempt(record, result)
            if met or is_fully_escalated(methods, sizes):
                break
            REGISTRY.counter("repro_optimizer_escalations_total").inc()
            methods = escalate_methods(
                methods, self.escalation_factor, sizes
            )
        return OptimizedResult(
            report=report, result=result, attempts=tuple(attempts)
        )

    @staticmethod
    def _budget_aliases(result: QueryResult) -> list[str]:
        assert result.plan is not None
        return [s.alias for s in result.plan.specs if s.kind != "avg"]

    def _realized(self, result: QueryResult, budget: ErrorBudget) -> float:
        return max(
            budget.realized_fraction(result.estimates[alias])
            for alias in self._budget_aliases(result)
        )


def optimize(
    db: "Database",
    plan: Aggregate,
    budget: ErrorBudget,
    *,
    seed: int | None = None,
    **kwargs,
) -> OptimizedResult:
    """One-shot convenience: build an optimizer and run the full loop."""
    return SamplingPlanOptimizer(db, **kwargs).optimize(
        plan, budget, seed=seed
    )
