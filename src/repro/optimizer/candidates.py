"""Candidate enumeration: SOA-equivalent plan variants of one query.

The GUS algebra's whole point (paper Sections 4–5) is that the sampling
design is a *free variable* of an aggregate query: any assignment of
uniform sampling operators to the base relations, under any join order,
estimates the same aggregate — only the cost and the Theorem 1 variance
change.  This module makes that concrete:

* :func:`decompose` strips a planned query down to its
  :class:`QuerySkeleton` — relations, per-relation sampling methods,
  equi-join conditions, residual filters, and aggregate specs;
* :meth:`QuerySkeleton.build` reassembles an executable plan for any
  (join order, method assignment) pair, reusing the planner's
  left-deep-tree construction so SQL-planned and optimizer-built plans
  are structurally identical;
* :func:`enumerate_assignments` walks a geometric rate ladder across
  the Bernoulli / lineage-hash / block / without-replacement families
  (uniform grids always; the per-relation cartesian product whenever it
  stays small), and :func:`join_orders` enumerates the connected
  left-deep orders;
* :func:`reusable_methods` / :func:`escalate_methods` support the
  adaptive loop: hash-based Bernoulli filters at a fixed seed draw
  *nested* samples as the rate grows, so escalated re-executions keep
  every already-drawn tuple.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import PlanError, ReproError
from repro.relational import plan as p
from repro.relational.expressions import Expr, and_
from repro.sampling import (
    Bernoulli,
    BlockBernoulli,
    BlockWithoutReplacement,
    CoordinatedBernoulli,
    LineageHashBernoulli,
    SamplingMethod,
    WithoutReplacement,
)
from repro.sampling.registry import (
    DEFAULT_BLOCK_ROWS,
    family_names,
    make_family_method,
    relation_seed,
)

#: Geometric rate ladder the enumerator walks (×2–2.5 steps).
RATE_LADDER: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.8)

#: Method families the enumerator instantiates — discovered from the
#: sampling-family registry (``sampling.register_family``), so newly
#: registered families enter candidate enumeration without edits here.
FAMILIES: tuple[str, ...] = family_names(enumerated_only=True)

#: Rows per block for generated SYSTEM-style candidates.
BLOCK_ROWS = DEFAULT_BLOCK_ROWS

#: Cap on the per-relation cartesian product of rate assignments.
MAX_CARTESIAN = 256


@dataclass(frozen=True)
class QuerySkeleton:
    """A query reduced to the parts every SOA-equivalent variant shares.

    ``relations`` preserves the original leaf (FROM) order; ``methods``
    holds the *as-written* sampling method of each sampled relation
    (unsampled relations are absent and stay unsampled in every
    candidate — adding sampling where the user asked for none would
    change the query's cost/accuracy contract silently).
    """

    relations: tuple[str, ...]
    methods: dict[str, SamplingMethod]
    join_conds: tuple[tuple[str, str, str, str], ...]
    filters: tuple[Expr, ...]
    specs: tuple[p.AggSpec, ...]

    @property
    def sampled(self) -> tuple[str, ...]:
        """The sampled relations, in canonical (sorted) order."""
        return tuple(sorted(self.methods))

    def build(
        self,
        order: Sequence[str] | None = None,
        methods: Mapping[str, SamplingMethod] | None = None,
    ) -> p.Aggregate:
        """An executable plan for a (join order, method assignment) pair."""
        order = tuple(order) if order is not None else self.relations
        if sorted(order) != sorted(self.relations):
            raise PlanError(
                f"join order {list(order)} is not a permutation of "
                f"{list(self.relations)}"
            )
        methods = dict(self.methods) if methods is None else dict(methods)
        leaves: dict[str, p.PlanNode] = {}
        for rel in order:
            scan = p.Scan(rel)
            leaves[rel] = (
                p.TableSample(scan, methods[rel]) if rel in methods else scan
            )
        tree = p.left_deep_join_tree(order, leaves, self.join_conds)
        if self.filters:
            tree = p.Select(tree, and_(*self.filters))
        return p.Aggregate(tree, self.specs)


@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated variant: a named (methods, join order) pair."""

    name: str
    order: tuple[str, ...]
    methods: dict[str, SamplingMethod]
    skeleton: QuerySkeleton = field(repr=False)

    def plan(self) -> p.Aggregate:
        return self.skeleton.build(self.order, self.methods)


def decompose(
    plan: p.Aggregate, column_owner: Mapping[str, str]
) -> QuerySkeleton:
    """Extract the optimizable skeleton of a planned aggregate query.

    ``column_owner`` maps column names to their base table (column
    names are globally unique in this engine).  Plans containing
    mid-plan samplers (:class:`~repro.relational.plan.LineageSample`),
    unions, or intersections are refused: their sampling design is not
    a per-relation assignment, so the enumerator cannot vary it without
    changing semantics.
    """
    if not isinstance(plan, p.Aggregate):
        raise PlanError("the optimizer works on Aggregate plans")
    relations: list[str] = []
    methods: dict[str, SamplingMethod] = {}
    conds: list[tuple[str, str, str, str]] = []
    filters: list[Expr] = []

    def walk(node: p.PlanNode) -> None:
        if isinstance(node, p.Scan):
            relations.append(node.table_name)
        elif isinstance(node, p.TableSample):
            relations.append(node.child.table_name)
            methods[node.child.table_name] = node.method
        elif isinstance(node, p.Select):
            walk(node.child)
            filters.append(node.predicate)
        elif isinstance(node, p.Project) and node.outputs is None:
            walk(node.child)
        elif isinstance(node, p.Join):
            walk(node.left)
            walk(node.right)
            for lk, rk in zip(node.left_keys, node.right_keys):
                conds.append(
                    (_owner(column_owner, lk), lk, _owner(column_owner, rk), rk)
                )
        elif isinstance(node, p.CrossProduct):
            walk(node.left)
            walk(node.right)
        else:
            raise PlanError(
                f"cannot optimize a plan containing {type(node).__name__}; "
                "the enumerator handles scans, TABLESAMPLE, selects, "
                "joins, and cross products"
            )

    walk(plan.child)
    return QuerySkeleton(
        relations=tuple(relations),
        methods=methods,
        join_conds=tuple(conds),
        filters=tuple(filters),
        specs=plan.specs,
    )


def _owner(column_owner: Mapping[str, str], column: str) -> str:
    try:
        return column_owner[column]
    except KeyError:
        raise PlanError(f"unknown join column {column!r}") from None


# -- method assignments -------------------------------------------------------


def make_method(
    family: str, rate: float, relation: str, size: int, seed: int
) -> SamplingMethod:
    """Instantiate one candidate family at a target sampling fraction.

    Thin wrapper over the sampling-family registry, kept for its
    historical name and :class:`~repro.errors.PlanError` contract.
    """
    try:
        return make_family_method(family, rate, relation, size, seed)
    except ReproError as exc:
        raise PlanError(str(exc)) from None


def methods_label(methods: Mapping[str, SamplingMethod]) -> str:
    parts = []
    for rel in sorted(methods):
        m = methods[rel]
        if isinstance(m, Bernoulli):
            parts.append(f"{rel}=B({m.p:g})")
        elif isinstance(m, CoordinatedBernoulli):
            parts.append(f"{rel}=C({m.p:g})")
        elif isinstance(m, LineageHashBernoulli):
            parts.append(f"{rel}=H({m.p:g})")
        elif isinstance(m, BlockBernoulli):
            parts.append(f"{rel}=SYS({m.p:g})")
        elif isinstance(m, WithoutReplacement):
            parts.append(f"{rel}=WOR({m.size})")
        else:
            parts.append(f"{rel}={m.describe()}")
    return ",".join(parts)


class Assignment(NamedTuple):
    """One per-relation method assignment, with its provenance.

    ``uniform_bernoulli`` marks the plain same-rate-everywhere
    Bernoulli grid entries — the baseline a rate-knob-only system would
    run, which the chooser prices the optimizer's pick against.
    """

    label: str
    methods: dict[str, SamplingMethod]
    uniform_bernoulli: bool = False


def enumerate_assignments(
    skeleton: QuerySkeleton,
    table_sizes: Mapping[str, int],
    *,
    ladder: Sequence[float] = RATE_LADDER,
    families: Sequence[str] = FAMILIES,
    seed: int = 0,
) -> list[Assignment]:
    """All per-relation method assignments to score.

    Always includes the query as written and the uniform
    (same family, same rate everywhere) grid; adds the per-relation
    Bernoulli-rate cartesian product while it stays under
    :data:`MAX_CARTESIAN` — rate *asymmetry* (sampling the skewed
    relation harder) is where most of the optimizer's winnings live.
    """
    sampled = skeleton.sampled
    if not sampled:
        return [Assignment("as-written", {})]
    out = [Assignment("as-written", dict(skeleton.methods))]
    seen = {methods_label(skeleton.methods)}

    def add(
        methods: dict[str, SamplingMethod], uniform_bernoulli: bool = False
    ) -> None:
        label = methods_label(methods)
        if label not in seen:
            seen.add(label)
            out.append(Assignment(label, methods, uniform_bernoulli))

    for family in families:
        for rate in ladder:
            add(
                {
                    rel: make_method(family, rate, rel, table_sizes[rel], seed)
                    for rel in sampled
                },
                uniform_bernoulli=(family == "bernoulli"),
            )
    if len(ladder) ** len(sampled) <= MAX_CARTESIAN:
        grids = [[(rel, rate) for rate in ladder] for rel in sampled]
        combos: list[list[tuple[str, float]]] = [[]]
        for grid in grids:
            combos = [combo + [entry] for combo in combos for entry in grid]
        for combo in combos:
            add(
                {
                    rel: make_method(
                        "bernoulli", rate, rel, table_sizes[rel], seed
                    )
                    for rel, rate in combo
                }
            )
    return out


# -- join orders --------------------------------------------------------------


def join_orders(
    skeleton: QuerySkeleton, *, limit: int = 12
) -> list[tuple[str, ...]]:
    """Connected left-deep join orders, the original order first.

    Orders are grown one relation at a time, only ever appending a
    relation joined (by some condition) to the prefix — the variants a
    cross-product-free left-deep executor can actually run.  When the
    join graph is disconnected (the query had cross products) only the
    original order is returned.
    """
    rels = skeleton.relations
    if len(rels) == 1:
        return [rels]
    adjacency: dict[str, set[str]] = {r: set() for r in rels}
    for a, _, c, _ in skeleton.join_conds:
        adjacency[a].add(c)
        adjacency[c].add(a)
    orders: list[tuple[str, ...]] = [rels]
    seen = {rels}

    def grow(prefix: tuple[str, ...], connected: set[str]) -> None:
        if len(orders) >= limit:
            return
        if len(prefix) == len(rels):
            if prefix not in seen:
                seen.add(prefix)
                orders.append(prefix)
            return
        for nxt in rels:
            if nxt in prefix or nxt not in connected:
                continue
            grow(prefix + (nxt,), connected | adjacency[nxt])

    for start in rels:
        grow((start,), {start} | adjacency[start])
    connected_all = any(len(o) == len(rels) for o in orders[1:]) or all(
        r in _reachable(adjacency, rels[0]) for r in rels
    )
    if not connected_all:
        return [rels]
    return orders[:limit]


def _reachable(adjacency: Mapping[str, set[str]], start: str) -> set[str]:
    seen = {start}
    frontier = [start]
    while frontier:
        for nbr in adjacency[frontier.pop()]:
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return seen


# -- escalation ---------------------------------------------------------------


def reusable_methods(
    methods: Mapping[str, SamplingMethod], seed: int
) -> dict[str, SamplingMethod]:
    """Swap RNG-Bernoulli filters for hash-keyed ones before executing.

    A :class:`LineageHashBernoulli` at a fixed seed keeps exactly the
    tuples whose hash falls below the rate, so raising the rate keeps a
    *superset* of the previous draw — every row of a failed attempt is
    drawn again (plus new ones) instead of being thrown away.  Methods
    without a hash form (block, WOR) are returned unchanged and simply
    redraw on escalation.
    """
    out: dict[str, SamplingMethod] = {}
    for rel, method in methods.items():
        if isinstance(method, Bernoulli):
            out[rel] = LineageHashBernoulli(
                method.p, seed=relation_seed(seed, rel)
            )
        else:
            out[rel] = method
    return out


def escalate_methods(
    methods: Mapping[str, SamplingMethod],
    factor: float,
    table_sizes: Mapping[str, int],
) -> dict[str, SamplingMethod]:
    """Geometrically increase every sampling rate by ``factor``."""
    out: dict[str, SamplingMethod] = {}
    for rel, method in methods.items():
        if isinstance(method, CoordinatedBernoulli):
            # at_rate keeps the namespace-derived seed, so the escalated
            # draw stays nested *and* coordinated across versions.
            out[rel] = method.at_rate(min(1.0, method.p * factor))
        elif isinstance(method, LineageHashBernoulli):
            out[rel] = LineageHashBernoulli(
                min(1.0, method.p * factor), seed=method.seed
            )
        elif isinstance(method, Bernoulli):
            out[rel] = Bernoulli(min(1.0, method.p * factor))
        elif isinstance(method, BlockBernoulli):
            out[rel] = BlockBernoulli(
                min(1.0, method.p * factor), method.rows_per_block
            )
        elif isinstance(method, WithoutReplacement):
            out[rel] = WithoutReplacement(
                min(table_sizes[rel], max(2, int(round(method.size * factor))))
            )
        elif isinstance(method, BlockWithoutReplacement):
            out[rel] = BlockWithoutReplacement(
                max(2, int(round(method.n_blocks * factor))),
                method.rows_per_block,
            )
        else:
            out[rel] = method
    return out


def max_rate(
    methods: Mapping[str, SamplingMethod],
    table_sizes: Mapping[str, int] | None = None,
) -> float:
    """The largest per-relation sampling fraction of an assignment.

    The serving tier labels each progressive frame with this — "how
    much of the data has been drawn so far" — so it must be a fraction
    for every family: rate-based methods report ``p`` directly,
    size-based ones (WOR) the realized ``n / N`` when sizes are known.
    """
    best = 0.0
    for rel, method in methods.items():
        p = getattr(method, "p", None)
        if p is not None:
            best = max(best, float(p))
        elif isinstance(method, WithoutReplacement) and table_sizes:
            total = table_sizes.get(rel, 0)
            if total > 0:
                best = max(best, method.size / total)
        else:
            best = max(best, 1.0)
    return best if methods else 1.0


def is_fully_escalated(
    methods: Mapping[str, SamplingMethod], table_sizes: Mapping[str, int]
) -> bool:
    """True when every method already samples its whole relation.

    The escalation loop stops here: re-executing a full scan can only
    reproduce the same answer.
    """
    for rel, method in methods.items():
        if isinstance(method, (Bernoulli, LineageHashBernoulli, BlockBernoulli)):
            if method.p < 1.0:
                return False
        elif isinstance(method, WithoutReplacement):
            if method.size < table_sizes[rel]:
                return False
        elif isinstance(method, BlockWithoutReplacement):
            total_blocks = -(-table_sizes[rel] // method.rows_per_block)
            if method.n_blocks < total_blocks:
                return False
        else:
            return False
    return True
