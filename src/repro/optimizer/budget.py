"""Error budgets: the accuracy contract of an optimized query.

An error budget is the user-facing target "the answer must be within
``p``% of the truth with confidence ``level``" — the ``WITHIN 5 %
CONFIDENCE 0.95`` clause of the SQL dialect.  Internally the budget is
a bound on the *relative confidence-interval half-width*: a candidate
plan meets the budget when ``z · σ̂ / |µ̂| ≤ p``, where ``z`` is the
critical value of the chosen interval family (normal or the
distribution-free Chebyshev bound).

Dividing the half-width target by ``z`` converts it into a target on
the relative standard deviation, which is the quantity Theorem 1
predicts from a pilot sample — that conversion is what lets the plan
chooser compare candidates *before* executing anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import confidence
from repro.core.estimator import Estimate
from repro.errors import EstimationError


@dataclass(frozen=True)
class ErrorBudget:
    """A relative-accuracy target at a confidence level.

    ``relative_half_width`` is a fraction (``0.05`` means "within 5%"),
    ``level`` the two-sided confidence level, and ``method`` the
    interval family used to check it (``normal`` or ``chebyshev``).
    """

    relative_half_width: float
    level: float = 0.95
    method: str = "normal"

    def __post_init__(self) -> None:
        if not self.relative_half_width > 0.0:
            raise EstimationError(
                f"budget half-width {self.relative_half_width} must be "
                "positive"
            )
        if not 0.0 < self.level < 1.0:
            raise EstimationError(
                f"confidence level {self.level} must be in (0, 1)"
            )
        if self.method not in confidence.METHODS:
            raise EstimationError(
                f"unknown interval method {self.method!r}; "
                f"use {confidence.METHODS}"
            )

    @classmethod
    def from_percent(
        cls, percent: float, level: float = 0.95, method: str = "normal"
    ) -> "ErrorBudget":
        """The SQL form: ``WITHIN <percent> % CONFIDENCE <level>``."""
        return cls(percent / 100.0, level, method)

    @property
    def percent(self) -> float:
        return self.relative_half_width * 100.0

    @property
    def critical_value(self) -> float:
        """Half-width of the unit-σ interval (``z`` for normal)."""
        return confidence.interval(0.0, 1.0, self.level, self.method).hi

    @property
    def target_relative_std(self) -> float:
        """The coefficient-of-variation bound implied by the budget."""
        return self.relative_half_width / self.critical_value

    def realized_fraction(self, estimate: Estimate) -> float:
        """The *achieved* relative CI half-width of an estimate."""
        ci = estimate.ci(self.level, self.method)
        half = (ci.hi - ci.lo) / 2.0
        if estimate.value == 0.0:
            return 0.0 if half == 0.0 else math.inf
        return half / abs(estimate.value)

    def met_by(self, estimate: Estimate) -> bool:
        """True when the realized interval honours the budget.

        A clamped variance (the unbiased estimator dipped below zero on
        a too-small sample) yields a zero-width interval that proves
        nothing, so it counts as a miss — the escalation loop should
        draw more data rather than declare victory.
        """
        if estimate.clamped:
            return False
        return self.realized_fraction(estimate) <= self.relative_half_width

    def describe(self) -> str:
        return (
            f"±{self.percent:g}% at {self.level:g} confidence "
            f"({self.method})"
        )
