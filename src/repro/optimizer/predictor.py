"""Pilot-based variance prediction (the Section 8 mechanism).

Theorem 1's variance splits into data terms (``y_S``) and sampling
terms (``c_S / a²``).  One executed *pilot* sample yields unbiased
``Ŷ_S`` estimates of the data terms over the full query schema; every
candidate sampling design then costs only its own ``c_S / a²`` weights
— a Möbius transform and a dot product — to score.  This module is the
shared engine behind both the interactive advisor
(:mod:`repro.apps.advisor`) and the cost-based optimizer: the advisor
ranks a handful of hand-named strategies, the optimizer sweeps hundreds
of enumerated candidates, but both plug the same pilot moments into the
same formula.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.algebra import join_gus, lift_gus
from repro.core.estimator import theorem1_variance, unbiased_y_terms, y_terms
from repro.core.gus import GUSParams, identity_gus
from repro.core.lattice import SubsetLattice
from repro.core.sbox import QueryResult
from repro.errors import EstimationError
from repro.relational.aggregates import aggregate_input_vector
from repro.relational.plan import AggSpec
from repro.sampling.base import SamplingMethod


def combined_gus(
    methods: Mapping[str, SamplingMethod],
    table_sizes: Mapping[str, int],
    schema: Sequence[str],
) -> GUSParams:
    """Single top GUS of a per-relation method assignment over ``schema``.

    Relations absent from ``methods`` stay unsampled (identity GUS,
    Proposition 4); the rest join by Proposition 6.
    """
    params: GUSParams | None = None
    for rel in sorted(schema):
        if rel in methods:
            dim = methods[rel].gus(rel, table_sizes[rel])
        else:
            dim = identity_gus([rel])
        params = dim if params is None else join_gus(params, dim)
    if params is None:
        raise EstimationError("method assignment needs at least one relation")
    return params


def pilot_moments(
    result: QueryResult, spec: AggSpec
) -> tuple[np.ndarray, float]:
    """Unbiased ``Ŷ`` over the full query schema, plus the pilot value.

    ``result`` is any executed GUS sample of the query (the SBox output
    with its plan attached).  The moments are computed over the *full*
    lineage schema — not just the pilot's sampled relations — because a
    candidate may sample relations the pilot left unsampled.
    """
    if result.plan is None:
        raise EstimationError(
            "pilot scoring needs the QueryResult produced by the SBox "
            "(with its plan attached)"
        )
    if spec.kind == "avg":
        raise EstimationError(
            "variance prediction covers SUM-like aggregates; AVG is a "
            "ratio (use its SUM and COUNT components)"
        )
    f = aggregate_input_vector(result.sample, spec)
    schema = sorted(result.rewrite.params.schema)
    full_lattice = SubsetLattice(schema)
    observed = lift_gus(result.rewrite.params, frozenset(schema))
    plugin = y_terms(f, result.sample.lineage, full_lattice)
    yhat = unbiased_y_terms(observed, plugin)
    return yhat, float(result.estimates[spec.alias].value)


class VariancePredictor:
    """Score arbitrary candidate GUS designs from one pilot execution.

    Holds unbiased moments per aggregate alias;
    :meth:`predicted_relative_std` reports the worst (largest)
    coefficient of variation across the query's aggregates, which is
    the binding constraint for a budget that must hold for all of them.
    """

    def __init__(
        self,
        schema: frozenset[str],
        moments: dict[str, tuple[np.ndarray, float]],
        pilot: QueryResult,
    ) -> None:
        if not moments:
            raise EstimationError("predictor needs at least one aggregate")
        self.schema = frozenset(schema)
        self.moments = moments
        self.pilot = pilot

    @classmethod
    def from_pilot(cls, result: QueryResult) -> "VariancePredictor":
        """Build from an executed pilot, one moment set per aggregate.

        AVG aggregates are skipped (they are ratios, outside Theorem 1);
        an all-AVG query cannot be budget-optimized.
        """
        assert result.plan is not None
        moments: dict[str, tuple[np.ndarray, float]] = {}
        for spec in result.plan.specs:
            if spec.kind == "avg":
                continue
            moments[spec.alias] = pilot_moments(result, spec)
        if not moments:
            raise EstimationError(
                "no SUM-like aggregate to predict for (AVG is a ratio; "
                "budget its SUM and COUNT components instead)"
            )
        schema = frozenset(result.rewrite.params.schema)
        return cls(schema, moments, result)

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(self.moments)

    def predict_variance(self, params: GUSParams, alias: str) -> float:
        """Theorem 1 variance of ``alias`` under the candidate design."""
        yhat, _ = self.moments[alias]
        return theorem1_variance(lift_gus(params, self.schema), yhat)

    def predicted_relative_std(self, params: GUSParams) -> float:
        """Worst predicted coefficient of variation across aggregates.

        Negative variance predictions (pilot noise) clamp to zero: the
        candidate is then predicted "free", and the escalation loop is
        the safety net if reality disagrees.
        """
        worst = 0.0
        for alias in self.moments:
            variance = max(self.predict_variance(params, alias), 0.0)
            _, value = self.moments[alias]
            if value == 0.0:
                return float("inf")
            worst = max(worst, float(np.sqrt(variance)) / abs(value))
        return worst

    def predicted_value(self, alias: str) -> float:
        return self.moments[alias][1]
