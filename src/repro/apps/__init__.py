"""The paper's Section 8 applications, built on the core algebra.

* :mod:`repro.apps.robustness`    — "database as a sample": sensitivity
  of query results to random tuple loss;
* :mod:`repro.apps.advisor`       — predict the variance of alternative
  sampling strategies from one observed sample;
* :mod:`repro.apps.cardinality`   — intermediate-result size estimation
  with confidence intervals, for plan selection;
* :mod:`repro.apps.load_shedding` — stream load shedding with
  error-aware sampling rates, including the multi-stream join case the
  paper highlights as newly analysable.
"""

from repro.apps.advisor import (
    AdvisorReport,
    StrategyOutcome,
    advise,
    recommend,
)
from repro.apps.cardinality import CardinalityEstimate, estimate_cardinality
from repro.apps.load_shedding import (
    LoadShedder,
    StreamJoinShedder,
    combine_independent,
)
from repro.apps.robustness import RobustnessReport, robustness_report

__all__ = [
    "robustness_report",
    "RobustnessReport",
    "advise",
    "recommend",
    "AdvisorReport",
    "StrategyOutcome",
    "estimate_cardinality",
    "CardinalityEstimate",
    "LoadShedder",
    "StreamJoinShedder",
    "combine_independent",
]
