"""Intermediate-result cardinality estimation (Section 8).

"Query execution engines maintain a sample of the data and evaluate
aggregates on it to predict the size of the intermediate relations.
Our theory allows for the evaluation of the precision of these, thereby
preventing the selection of inferior plans."

A cardinality is just ``COUNT(*)`` — a SUM-like aggregate with
``f ≡ 1`` — so the whole GUS machinery applies verbatim and, unlike the
point estimates optimizers usually rely on, every prediction here
carries a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.confidence import ConfidenceInterval
from repro.core.estimator import Estimate
from repro.errors import PlanError
from repro.relational.plan import Aggregate, AggSpec, PlanNode, contains_sampling


@dataclass(frozen=True)
class CardinalityEstimate:
    """An intermediate-result size estimate with its uncertainty."""

    estimate: Estimate
    interval: ConfidenceInterval

    @property
    def value(self) -> float:
        return self.estimate.value

    @property
    def reliable(self) -> bool:
        """Optimizer rule of thumb: the CI spans less than 2× the value.

        A cardinality whose 95% interval is wider than the estimate
        itself should not drive plan choice — this is precisely the
        "evaluation of the precision" the paper proposes.
        """
        if self.value <= 0:
            return False
        return self.interval.width < 2.0 * self.value

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"|result| ≈ {self.value:.0f} ∈ "
            f"[{max(self.interval.lo, 0):.0f}, {self.interval.hi:.0f}] "
            f"({'reliable' if self.reliable else 'unreliable'})"
        )


def estimate_cardinality(
    db,
    subplan: PlanNode,
    *,
    seed: int | None = None,
    level: float = 0.95,
    method: str = "normal",
) -> CardinalityEstimate:
    """Estimate ``|subplan|`` from the sampling operators it contains.

    ``subplan`` is any sampled expression (e.g. a join of two
    TABLESAMPLE scans).  The SBox runs ``COUNT(*)`` over it and the
    interval comes from Theorem 1.
    """
    if isinstance(subplan, Aggregate):
        raise PlanError("pass the expression, not an aggregate over it")
    if not contains_sampling(subplan):
        raise PlanError(
            "the subplan has no sampling operators; its cardinality is "
            "exact — nothing to estimate"
        )
    plan = Aggregate(subplan, [AggSpec("count", None, "cardinality")])
    result = db.estimate(plan, seed=seed)
    est = result.estimates["cardinality"]
    return CardinalityEstimate(est, est.ci(level, method))


def compare_join_orders(
    db,
    candidates: dict[str, PlanNode],
    *,
    seed: int | None = None,
) -> dict[str, CardinalityEstimate]:
    """Estimate every candidate subplan's cardinality (plan selection).

    Returns one :class:`CardinalityEstimate` per candidate so an
    optimizer can compare both sizes *and* how trustworthy each size
    is.
    """
    return {
        name: estimate_cardinality(db, plan, seed=seed)
        for name, plan in candidates.items()
    }
