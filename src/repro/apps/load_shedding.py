"""Stream load shedding with error control (Section 8).

"An interesting problem in load shedding is determining a sampling rate
so that the system can keep up with fast-rate incoming data while
minimizing the error.  While such analysis was done for single
relations, our theory provides for similar analysis with multiple
relations."

Two shedders:

* :class:`LoadShedder` — single stream: pick the Bernoulli keep-rate
  from the capacity/arrival ratio, keep tuples with the deterministic
  lineage hash, and answer windowed SUM queries with Theorem 1
  confidence intervals.
* :class:`StreamJoinShedder` — the multi-relation case the paper
  highlights: two independently shed streams joined in the window; the
  join's GUS is Proposition 6's composition of the two shed rates, so
  the estimate *and its error* come out of the same algebra.
"""

from __future__ import annotations

import numpy as np

from repro.core.algebra import join_gus
from repro.core.estimator import Estimate, estimate_sum
from repro.core.gus import bernoulli_gus
from repro.errors import EstimationError
from repro.relational.executor import join_indices
from repro.sampling.pseudorandom import LineageHashBernoulli
from repro.stats.moments import RunningMoments


class LoadShedder:
    """Sheds one stream to a target capacity, tracking estimate quality."""

    def __init__(
        self,
        capacity_per_window: float,
        seed: int = 0,
        min_rate: float = 0.001,
    ) -> None:
        if capacity_per_window <= 0:
            raise EstimationError("capacity must be positive")
        self.capacity = float(capacity_per_window)
        self.seed = seed
        self.min_rate = float(min_rate)
        self.arrivals = RunningMoments()
        self._next_id = 0

    def rate_for(self, arrival_count: int) -> float:
        """Keep-rate for a window of ``arrival_count`` tuples."""
        if arrival_count <= self.capacity:
            return 1.0
        return max(self.capacity / arrival_count, self.min_rate)

    def shed_window(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Shed one window; returns (kept values, kept ids, rate used)."""
        values = np.asarray(values, dtype=np.float64)
        n = values.shape[0]
        self.arrivals.add(float(n))
        rate = self.rate_for(n)
        ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        self._next_id += n
        if rate >= 1.0:
            return values, ids, 1.0
        keep = LineageHashBernoulli(rate, self.seed).keep(ids)
        return values[keep], ids[keep], rate

    def estimate_window(
        self, kept_values: np.ndarray, kept_ids: np.ndarray, rate: float
    ) -> Estimate:
        """Windowed SUM estimate with Theorem 1 error bounds."""
        params = bernoulli_gus("stream", rate)
        return estimate_sum(
            params,
            kept_values,
            {"stream": np.asarray(kept_ids, dtype=np.int64)},
            label="SUM",
        )

    def process_window(self, values: np.ndarray) -> Estimate:
        """Shed + estimate in one call (the common usage)."""
        kept, ids, rate = self.shed_window(values)
        return self.estimate_window(kept, ids, rate)


class StreamJoinShedder:
    """Load shedding over a two-stream windowed equi-join.

    Each stream is shed independently at its own rate; the windowed
    join of the kept tuples is governed by the GUS
    ``B(rate_left) ⋈ B(rate_right)`` (Proposition 6), which yields both
    the unbiased join-SUM estimate and its variance.
    """

    def __init__(
        self, rate_left: float, rate_right: float, seed: int = 0
    ) -> None:
        for rate in (rate_left, rate_right):
            if not 0.0 < rate <= 1.0:
                raise EstimationError(f"shed rate {rate} must be in (0, 1]")
        self.rate_left = float(rate_left)
        self.rate_right = float(rate_right)
        self.left_filter = LineageHashBernoulli(rate_left, seed)
        self.right_filter = LineageHashBernoulli(rate_right, seed + 1)

    def process_window(
        self,
        left_keys: np.ndarray,
        left_values: np.ndarray,
        right_keys: np.ndarray,
        right_values: np.ndarray,
    ) -> Estimate:
        """Estimate ``Σ f_l · f_r`` over the window join of the streams."""
        left_keys = np.asarray(left_keys)
        right_keys = np.asarray(right_keys)
        lv = np.asarray(left_values, dtype=np.float64)
        rv = np.asarray(right_values, dtype=np.float64)
        lid = np.arange(left_keys.shape[0], dtype=np.int64)
        rid = np.arange(right_keys.shape[0], dtype=np.int64)

        lkeep = self.left_filter.keep(lid)
        rkeep = self.right_filter.keep(rid)
        li, ri = join_indices(left_keys[lkeep], right_keys[rkeep])

        f = lv[lkeep][li] * rv[rkeep][ri]
        lineage = {
            "left": lid[lkeep][li],
            "right": rid[rkeep][ri],
        }
        params = join_gus(
            bernoulli_gus("left", self.rate_left),
            bernoulli_gus("right", self.rate_right),
        )
        return estimate_sum(params, f, lineage, label="JOIN-SUM")
