"""Stream load shedding with error control (Section 8).

"An interesting problem in load shedding is determining a sampling rate
so that the system can keep up with fast-rate incoming data while
minimizing the error.  While such analysis was done for single
relations, our theory provides for similar analysis with multiple
relations."

Both shedders are built on the streaming engine (:mod:`repro.stream`):
windowed answers come from mergeable moment sketches, never from
re-scanning kept tuples.

* :class:`LoadShedder` — single stream: pick the Bernoulli keep-rate
  from the capacity/arrival ratio and keep tuples with the
  deterministic lineage hash.  Each window's rate is its own GUS, so
  windows get independent :class:`~repro.stream.StreamingEstimator`
  instances whose estimates — totals *and* variances — add up into a
  whole-session estimate (:meth:`LoadShedder.session_estimate`).
* :class:`StreamJoinShedder` — the multi-relation case the paper
  highlights: two independently shed streams joined per window.  The
  shed rates are fixed, so one GUS (Proposition 6's composition)
  governs every window and the per-window sketches merge exactly into
  cumulative and sliding-window estimates.
"""

from __future__ import annotations

import numpy as np

from repro.core.algebra import join_gus
from repro.core.estimator import Estimate
from repro.core.gus import bernoulli_gus
from repro.errors import EstimationError
from repro.relational.executor import join_indices
from repro.sampling.pseudorandom import LineageHashBernoulli
from repro.stats.moments import RunningMoments
from repro.stream import SlidingWindow, StreamingEstimator


def combine_independent(estimates: list[Estimate], label: str = "SUM") -> Estimate:
    """Sum independent estimates: values add, variances add.

    The windows of a shed stream are disjoint sets of tuples sampled by
    independent filters, so the session total is the sum of the window
    estimators and its variance the sum of their variances — valid even
    when every window used a different rate (a different GUS).
    """
    if not estimates:
        raise EstimationError("no estimates to combine")
    return Estimate(
        value=float(sum(e.value for e in estimates)),
        variance_raw=float(sum(e.variance_raw for e in estimates)),
        n_sample=int(sum(e.n_sample for e in estimates)),
        label=label,
        extras={"windows": len(estimates)},
    )


class LoadShedder:
    """Sheds one stream to a target capacity, tracking estimate quality."""

    def __init__(
        self,
        capacity_per_window: float,
        seed: int = 0,
        min_rate: float = 0.001,
    ) -> None:
        if capacity_per_window <= 0:
            raise EstimationError("capacity must be positive")
        self.capacity = float(capacity_per_window)
        self.seed = seed
        self.min_rate = float(min_rate)
        self.arrivals = RunningMoments()
        self._next_id = 0
        #: Per-window estimates recorded so far, oldest first.
        self.window_estimates: list[Estimate] = []

    def rate_for(self, arrival_count: int) -> float:
        """Keep-rate for a window of ``arrival_count`` tuples."""
        if arrival_count <= self.capacity:
            return 1.0
        return max(self.capacity / arrival_count, self.min_rate)

    def shed_window(
        self, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Shed one window; returns (kept values, kept ids, rate used)."""
        values = np.asarray(values, dtype=np.float64)
        n = values.shape[0]
        self.arrivals.add(float(n))
        rate = self.rate_for(n)
        ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        self._next_id += n
        if rate >= 1.0:
            return values, ids, 1.0
        keep = LineageHashBernoulli(rate, self.seed).keep(ids)
        return values[keep], ids[keep], rate

    def estimate_window(
        self, kept_values: np.ndarray, kept_ids: np.ndarray, rate: float
    ) -> Estimate:
        """Windowed SUM estimate with Theorem 1 error bounds.

        The window gets its own streaming estimator because its rate is
        its own GUS.  Pure — safe to call repeatedly on the same
        window; only :meth:`process_window` records the estimate for
        :meth:`session_estimate`.
        """
        window = StreamingEstimator(bernoulli_gus("stream", rate))
        window.update(
            kept_values, {"stream": np.asarray(kept_ids, dtype=np.int64)}
        )
        return window.estimate()

    def process_window(self, values: np.ndarray) -> Estimate:
        """Shed + estimate in one call (the common usage).

        Each processed window is recorded exactly once for
        :meth:`session_estimate`.
        """
        kept, ids, rate = self.shed_window(values)
        est = self.estimate_window(kept, ids, rate)
        self.window_estimates.append(est)
        return est

    def session_estimate(self) -> Estimate:
        """The running SUM over *all* windows processed so far.

        Exact composition of the per-window estimators: disjoint,
        independently sampled windows mean both the points and the
        variances simply add.
        """
        return combine_independent(self.window_estimates)


class StreamJoinShedder:
    """Load shedding over a two-stream windowed equi-join.

    Each stream is shed independently at its own *fixed* rate; the
    windowed join of the kept tuples is governed by the GUS
    ``B(rate_left) ⋈ B(rate_right)`` (Proposition 6).  Because that GUS
    never changes, every window's moment sketch merges exactly into

    * a cumulative estimator over the whole session
      (:meth:`cumulative_estimate`), and
    * an optional sliding window of the last ``sliding_length`` windows
      (:meth:`sliding_estimate`),

    neither of which ever re-scans a kept tuple.  Lineage ids advance
    across windows so cross-window tuples never collide in the sketch.
    """

    def __init__(
        self,
        rate_left: float,
        rate_right: float,
        seed: int = 0,
        sliding_length: int | None = None,
    ) -> None:
        for rate in (rate_left, rate_right):
            if not 0.0 < rate <= 1.0:
                raise EstimationError(f"shed rate {rate} must be in (0, 1]")
        self.rate_left = float(rate_left)
        self.rate_right = float(rate_right)
        self.left_filter = LineageHashBernoulli(rate_left, seed)
        self.right_filter = LineageHashBernoulli(rate_right, seed + 1)
        self.gus = join_gus(
            bernoulli_gus("left", self.rate_left),
            bernoulli_gus("right", self.rate_right),
        )
        self._cumulative = StreamingEstimator(self.gus, label="JOIN-SUM")
        self._sliding = (
            SlidingWindow(self.gus, sliding_length, label="JOIN-SUM")
            if sliding_length is not None
            else None
        )
        self._next_left = 0
        self._next_right = 0

    def process_window(
        self,
        left_keys: np.ndarray,
        left_values: np.ndarray,
        right_keys: np.ndarray,
        right_values: np.ndarray,
    ) -> Estimate:
        """Estimate ``Σ f_l · f_r`` over the window join of the streams."""
        left_keys = np.asarray(left_keys)
        right_keys = np.asarray(right_keys)
        lv = np.asarray(left_values, dtype=np.float64)
        rv = np.asarray(right_values, dtype=np.float64)
        lid = np.arange(
            self._next_left, self._next_left + left_keys.shape[0], dtype=np.int64
        )
        rid = np.arange(
            self._next_right, self._next_right + right_keys.shape[0],
            dtype=np.int64,
        )
        self._next_left += left_keys.shape[0]
        self._next_right += right_keys.shape[0]

        lkeep = self.left_filter.keep(lid)
        rkeep = self.right_filter.keep(rid)
        li, ri = join_indices(left_keys[lkeep], right_keys[rkeep])

        f = lv[lkeep][li] * rv[rkeep][ri]
        lineage = {
            "left": lid[lkeep][li],
            "right": rid[rkeep][ri],
        }
        window = StreamingEstimator(self.gus, label="JOIN-SUM")
        window.update(f, lineage)
        self._cumulative.merge(window)
        if self._sliding is not None:
            self._sliding.append(window)
        return window.estimate()

    def cumulative_estimate(self) -> Estimate:
        """The join-SUM over every window processed so far (one merge tree)."""
        return self._cumulative.estimate()

    def sliding_estimate(self) -> Estimate:
        """The join-SUM over the last ``sliding_length`` windows."""
        if self._sliding is None:
            raise EstimationError(
                "shedder was created without sliding_length; "
                "pass sliding_length=k to enable sliding estimates"
            )
        return self._sliding.estimate()
