"""Robustness analysis: the database viewed as a sample (Section 8).

"If we assume that 1% of the tuples are mistakenly lost and we wish to
predict the impact on the query results we can view the database as a
99% Bernoulli sample.  A large variance will indicate that the query
results are sensitive to such perturbations and thus not robust."

Because the full data *is* available here, the Theorem 1 variance is
computed exactly (no estimation step), giving a deterministic
sensitivity figure per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.algebra import join_gus
from repro.core.estimator import exact_moments
from repro.core.gus import GUSParams, bernoulli_gus
from repro.errors import PlanError
from repro.relational.aggregates import aggregate_input_vector
from repro.relational.plan import Aggregate, contains_sampling


@dataclass(frozen=True)
class RobustnessReport:
    """Sensitivity of one aggregate to random tuple loss."""

    alias: str
    value: float
    loss_rate: float
    std: float

    @property
    def coefficient_of_variation(self) -> float:
        """Relative perturbation scale σ/|value| (inf at value = 0)."""
        if self.value == 0.0:
            return math.inf if self.std > 0 else 0.0
        return self.std / abs(self.value)

    @property
    def robust(self) -> bool:
        """Rule of thumb: < 1% relative perturbation is robust."""
        return self.coefficient_of_variation < 0.01

    def __str__(self) -> str:  # pragma: no cover - display helper
        flag = "robust" if self.robust else "SENSITIVE"
        return (
            f"{self.alias}: value={self.value:.6g}, "
            f"±{self.std:.4g} under {self.loss_rate:.1%} loss "
            f"(cv={self.coefficient_of_variation:.2%}) → {flag}"
        )


def loss_gus(relations, loss_rate: float) -> GUSParams:
    """The GUS modelling independent tuple loss on every relation."""
    params: GUSParams | None = None
    for rel in sorted(relations):
        dim = bernoulli_gus(rel, 1.0 - loss_rate)
        params = dim if params is None else join_gus(params, dim)
    if params is None:
        raise PlanError("query references no base relations")
    return params


def robustness_report(
    db, plan: Aggregate, loss_rate: float = 0.01
) -> list[RobustnessReport]:
    """Exact sensitivity of each aggregate to ``loss_rate`` tuple loss.

    ``plan`` must be a sampling-free aggregate query; the analysis
    inserts the conceptual Bernoulli(1−loss) on every base relation and
    evaluates Theorem 1 on the full data.
    """
    if not isinstance(plan, Aggregate):
        raise PlanError("robustness analysis expects an aggregate plan")
    if contains_sampling(plan):
        raise PlanError(
            "robustness analysis treats the *database* as the sample; "
            "pass the exact (unsampled) query"
        )
    if not 0.0 < loss_rate < 1.0:
        raise PlanError(f"loss rate {loss_rate} must be in (0, 1)")
    full = db.execute_exact(plan.child)
    params = loss_gus(plan.child.lineage_schema(), loss_rate)
    reports = []
    for spec in plan.specs:
        if spec.kind == "avg":
            raise PlanError(
                "robustness analysis covers SUM-like aggregates "
                "(SUM/COUNT); AVG requires the delta method"
            )
        f = aggregate_input_vector(full, spec)
        total, var = exact_moments(params, f, full.lineage)
        reports.append(
            RobustnessReport(
                alias=spec.alias,
                value=total,
                loss_rate=loss_rate,
                std=float(np.sqrt(max(var, 0.0))),
            )
        )
    return reports
