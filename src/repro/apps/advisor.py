"""Sampling-plan advisor: choosing sampling parameters (Section 8).

"By using the unbiased y_S estimates from a single sampling instance,
the theory allows for plugging in co-efficients for different sampling
strategies to predict the respective variances."

The key decomposition: Theorem 1's variance splits into data properties
(``y_S``) and sampling properties (``c_S / a²``).  One executed sample
gives unbiased ``Ŷ_S`` once; each candidate strategy then costs only a
Möbius transform and a dot product to score — no re-execution.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.algebra import lift_gus
from repro.core.estimator import theorem1_variance
from repro.core.gus import GUSParams
from repro.core.sbox import QueryResult
from repro.errors import EstimationError
from repro.optimizer.predictor import combined_gus, pilot_moments
from repro.sampling.base import SamplingMethod


@dataclass(frozen=True)
class StrategyOutcome:
    """Predicted behaviour of one candidate sampling strategy."""

    name: str
    params: GUSParams
    predicted_variance: float
    predicted_value: float
    expected_sample_fraction: float

    @property
    def predicted_std(self) -> float:
        return math.sqrt(max(self.predicted_variance, 0.0))

    @property
    def predicted_relative_std(self) -> float:
        if self.predicted_value == 0.0:
            return math.inf
        return self.predicted_std / abs(self.predicted_value)


@dataclass(frozen=True)
class AdvisorReport:
    """Candidate strategies ranked by predicted variance (best first)."""

    outcomes: tuple[StrategyOutcome, ...]

    @property
    def best(self) -> StrategyOutcome:
        return self.outcomes[0]

    def table(self) -> str:
        """Plain-text ranking for interactive use."""
        header = (
            f"{'strategy':<28}{'a':>12}{'pred. std':>14}{'rel. std':>12}"
        )
        rows = [header, "-" * len(header)]
        for o in self.outcomes:
            rel = o.predicted_relative_std
            rel_text = f"{rel:>12.2%}" if math.isfinite(rel) else f"{'inf':>12}"
            rows.append(
                f"{o.name:<28}{o.params.a:>12.4g}"
                f"{o.predicted_std:>14.5g}{rel_text}"
            )
        return "\n".join(rows)


def candidate_params(
    methods: Mapping[str, SamplingMethod],
    table_sizes: Mapping[str, int],
    schema: Sequence[str],
) -> GUSParams:
    """Combined GUS of a per-relation strategy over ``schema``.

    Relations absent from ``methods`` stay unsampled (identity GUS).
    Thin alias of :func:`repro.optimizer.predictor.combined_gus`, kept
    for the advisor's public API.
    """
    try:
        return combined_gus(methods, table_sizes, schema)
    except EstimationError:
        raise EstimationError("advisor needs at least one relation") from None


def advise(
    result: QueryResult,
    strategies: Mapping[str, Mapping[str, SamplingMethod]],
    table_sizes: Mapping[str, int],
    *,
    alias: str | None = None,
) -> AdvisorReport:
    """Rank candidate strategies using one observed sample.

    ``result`` is a previously executed aggregate query (any GUS
    strategy); ``strategies`` maps a display name to per-relation
    sampling methods.  The observed sample provides the ``Ŷ_S``; each
    candidate contributes only its ``c_S / a²`` weights.
    """
    if result.plan is None:
        raise EstimationError(
            "advisor needs the QueryResult produced by the SBox "
            "(with its plan attached)"
        )
    alias = alias if alias is not None else next(iter(result.estimates))
    spec = next(
        (s for s in result.plan.specs if s.alias == alias), None
    )
    if spec is None:
        raise EstimationError(
            f"no aggregate {alias!r}; have "
            f"{[s.alias for s in result.plan.specs]}"
        )
    if spec.kind == "avg":
        raise EstimationError(
            "the advisor predicts variances of SUM-like aggregates; "
            "AVG is a ratio (use its SUM and COUNT components)"
        )
    # Ŷ over the *full* query schema: candidates may sample relations
    # the observed strategy left unsampled, so data moments must cover
    # every subset of the participating relations.  Shared with the
    # cost-based optimizer, which scores enumerated candidates the
    # same way.
    yhat, value = pilot_moments(result, spec)
    schema = sorted(result.rewrite.params.schema)

    outcomes = []
    for name, methods in strategies.items():
        params = candidate_params(methods, table_sizes, schema)
        variance = theorem1_variance(
            lift_gus(params, frozenset(schema)), yhat
        )
        outcomes.append(
            StrategyOutcome(
                name=name,
                params=params,
                predicted_variance=variance,
                predicted_value=value,
                expected_sample_fraction=params.a,
            )
        )
    outcomes.sort(key=lambda o: o.predicted_variance)
    return AdvisorReport(tuple(outcomes))


def recommend(
    report: AdvisorReport, target_relative_std: float
) -> StrategyOutcome | None:
    """Cheapest strategy predicted to meet an error target.

    "Cheapest" means the smallest expected sample fraction ``a`` (the
    dominant cost driver: expected result rows scale with ``a``).
    Returns ``None`` when no candidate meets the target — the caller
    should widen the candidate set or relax the target.
    """
    if target_relative_std <= 0:
        raise EstimationError(
            f"target relative std {target_relative_std} must be positive"
        )
    feasible = [
        o
        for o in report.outcomes
        if o.predicted_relative_std <= target_relative_std
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda o: o.expected_sample_fraction)
