"""Classical single-relation estimators (survey-sampling theory).

These are the formulas the paper's Related Work credits to the earliest
database sampling literature.  They only apply to a single sampled
relation — precisely the limitation the GUS algebra removes — and they
serve two roles here: a correctness cross-check (GUS must reduce to
them in the single-table case) and a baseline for the benchmark
harness.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Estimate
from repro.errors import EstimationError


def clt_bernoulli_estimate(sample_values: np.ndarray, p: float) -> Estimate:
    """Horvitz–Thompson total under Bernoulli(p) with plug-in variance.

    ``X = Σ f / p``; ``Var[X] = (1−p)/p · Σ_pop f²`` whose unbiased
    plug-in from the sample is ``(1−p)/p² · Σ_sample f²``.
    """
    if not 0.0 < p <= 1.0:
        raise EstimationError(f"Bernoulli rate {p} must be in (0, 1]")
    f = np.asarray(sample_values, dtype=np.float64)
    total = float(f.sum()) / p
    var = (1.0 - p) / (p * p) * float(np.dot(f, f))
    return Estimate(
        value=total,
        variance_raw=var,
        n_sample=int(f.shape[0]),
        label="CLT-Bernoulli",
    )


def clt_wor_estimate(
    sample_values: np.ndarray, population_size: int
) -> Estimate:
    """Expansion estimator for SRSWOR with the textbook variance.

    ``X = N·ȳ``; ``V̂ar[X] = N²(1−n/N)·s²/n`` with ``s²`` the sample
    variance (Bessel-corrected).
    """
    f = np.asarray(sample_values, dtype=np.float64)
    n = int(f.shape[0])
    if n == 0:
        return Estimate(0.0, 0.0, 0, label="CLT-WOR")
    if population_size < n:
        raise EstimationError(
            f"population {population_size} smaller than sample {n}"
        )
    mean = float(f.mean())
    total = population_size * mean
    if n == 1:
        # No within-sample variance information.
        return Estimate(total, float("nan"), 1, label="CLT-WOR")
    s2 = float(f.var(ddof=1))
    var = (
        population_size**2 * (1.0 - n / population_size) * s2 / n
    )
    return Estimate(
        value=total, variance_raw=var, n_sample=n, label="CLT-WOR"
    )
