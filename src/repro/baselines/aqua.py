"""AQUA-style star-schema estimation.

AQUA (Bell Labs) samples the *fact* table and joins every sampled fact
tuple with its (complete) dimension tables.  Because each fact tuple
yields an independent unit, the per-fact totals are an IID-style sample
and classical theory applies.  In GUS terms this is the special case of
a join where only one input carries a non-identity GUS — so the GUS
estimator must coincide, which the tests verify.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.baselines.clt_single_table import (
    clt_bernoulli_estimate,
    clt_wor_estimate,
)
from repro.core.estimator import Estimate, group_ids
from repro.errors import EstimationError


def per_fact_totals(
    f: np.ndarray, fact_lineage: np.ndarray
) -> np.ndarray:
    """Collapse joined result rows to per-fact-tuple aggregate totals."""
    f = np.asarray(f, dtype=np.float64)
    gids, n_groups = group_ids([np.asarray(fact_lineage)], f.shape[0])
    if n_groups == 0:
        return np.empty(0, dtype=np.float64)
    return np.bincount(gids, weights=f, minlength=n_groups)


def aqua_estimate(
    f: np.ndarray,
    fact_lineage: np.ndarray,
    *,
    method: str,
    fact_table_size: int,
    rate: float | None = None,
    sample_size: int | None = None,
    fact_sample_count: int | None = None,
) -> Estimate:
    """AQUA estimate of ``Σ f`` over a star join with a sampled fact table.

    ``f``/``fact_lineage`` describe the joined sample rows.  ``method``
    is ``"bernoulli"`` (with ``rate``) or ``"wor"`` (with
    ``sample_size``).  For WOR, fact tuples whose join result is empty
    still count toward the sample: pass ``fact_sample_count`` (the
    number of *drawn* fact tuples) so zero-contribution units enter the
    variance; defaults to the distinct fact tuples observed.
    """
    totals = per_fact_totals(f, fact_lineage)
    if method == "bernoulli":
        if rate is None:
            raise EstimationError("bernoulli method needs rate=")
        est = clt_bernoulli_estimate(totals, rate)
        return Estimate(
            est.value, est.variance_raw, est.n_sample, label="AQUA-Bernoulli"
        )
    if method == "wor":
        if sample_size is None:
            raise EstimationError("wor method needs sample_size=")
        drawn = (
            fact_sample_count
            if fact_sample_count is not None
            else totals.shape[0]
        )
        if drawn < totals.shape[0]:
            raise EstimationError(
                "fact_sample_count smaller than observed fact tuples"
            )
        padded = np.concatenate(
            [totals, np.zeros(drawn - totals.shape[0])]
        )
        est = clt_wor_estimate(padded, fact_table_size)
        return Estimate(
            est.value, est.variance_raw, est.n_sample, label="AQUA-WOR"
        )
    raise EstimationError(f"unknown AQUA method {method!r}")


def aqua_from_sample(
    sample, f_expr, fact_relation: str, catalog: Mapping[str, object], method
) -> Estimate:
    """Convenience wrapper taking an executed sample Table."""
    f = np.asarray(f_expr.eval(sample), dtype=np.float64)
    lineage = sample.lineage[fact_relation]
    n_fact = catalog[fact_relation].n_rows  # type: ignore[attr-defined]
    from repro.sampling import Bernoulli, WithoutReplacement

    if isinstance(method, Bernoulli):
        return aqua_estimate(
            f,
            lineage,
            method="bernoulli",
            fact_table_size=n_fact,
            rate=method.p,
        )
    if isinstance(method, WithoutReplacement):
        return aqua_estimate(
            f,
            lineage,
            method="wor",
            fact_table_size=n_fact,
            sample_size=method.effective_size(n_fact),
            fact_sample_count=method.effective_size(n_fact),
        )
    raise EstimationError(
        f"AQUA baseline supports Bernoulli/WOR, not {method!r}"
    )
