"""Baseline estimators from the paper's Related Work.

* :mod:`repro.baselines.clt_single_table` — classical single-relation
  survey estimators (the pre-AQUA state of the art).  On one sampled
  relation the GUS machinery must agree with these exactly, which the
  test suite verifies.
* :mod:`repro.baselines.aqua` — AQUA-style star-schema estimation:
  sample the fact table, keep dimensions whole, apply the CLT to
  per-fact-tuple totals.
* :mod:`repro.baselines.split_sample` — an online-aggregation-style
  baseline using with-replacement samples and across-epoch variance
  (ripple-join flavoured), the comparison point for queries GUS handles
  analytically.
"""

from repro.baselines.aqua import aqua_estimate
from repro.baselines.clt_single_table import (
    clt_bernoulli_estimate,
    clt_wor_estimate,
)
from repro.baselines.split_sample import split_sample_join_estimate

__all__ = [
    "clt_bernoulli_estimate",
    "clt_wor_estimate",
    "aqua_estimate",
    "split_sample_join_estimate",
]
