"""Online-aggregation-style baseline: with-replacement epoch sampling.

Ripple joins / online aggregation estimate joins from with-replacement
samples of each input.  Their variance analysis is query-specific and
mathematically heavy (the difficulty the paper's introduction recounts),
so the robust practical variant is *split-sample* (batch-means)
estimation: run ``k`` independent epochs, each drawing fresh WR samples
and producing one unbiased estimate, then use the across-epoch spread
for the confidence interval.

Unbiasedness per epoch: a WR draw of size ``n_i`` from ``N_i`` rows
hits any fixed tuple pair ``(t, u)`` in expectation ``n₁n₂/(N₁N₂)``
times, so scaling the joined sum by ``N₁N₂/(n₁n₂)`` is unbiased for the
full join total.  The price relative to GUS: WR needs *k·n* total
sampled rows to produce *k* degrees of freedom, and the CI uses a
t-quantile on few observations — visibly wider intervals at equal
budget, which the baseline benchmark shows.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import t as student_t

from repro.core.confidence import ConfidenceInterval
from repro.core.estimator import Estimate
from repro.errors import EstimationError
from repro.relational.executor import join_indices
from repro.relational.table import Table
from repro.sampling.with_replacement import WithReplacement


def _epoch_estimate(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    f_expr,
    n_left: int,
    n_right: int,
    rng: np.random.Generator,
) -> float:
    wr_left = WithReplacement(n_left)
    wr_right = WithReplacement(n_right)
    li = wr_left.draw_indices(left.n_rows, rng)
    ri = wr_right.draw_indices(right.n_rows, rng)
    left_s = left.take(li)
    right_s = right.take(ri)
    ji, jj = join_indices(left_s.column(left_key), right_s.column(right_key))
    if ji.size == 0:
        return 0.0
    combined = Table(
        None,
        {
            **{n: arr[ji] for n, arr in left_s.columns.items()},
            **{n: arr[jj] for n, arr in right_s.columns.items()},
        },
    )
    f = np.asarray(f_expr.eval(combined), dtype=np.float64)
    scale = (left.n_rows / n_left) * (right.n_rows / n_right)
    return float(f.sum()) * scale


def split_sample_join_estimate(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    f_expr,
    *,
    n_left: int,
    n_right: int,
    epochs: int = 10,
    rng: np.random.Generator | None = None,
) -> tuple[Estimate, ConfidenceInterval]:
    """Split-sample estimate of ``Σ f`` over an equi-join.

    Draws ``epochs`` independent WR sample pairs (sizes ``n_left`` /
    ``n_right``), averages the per-epoch estimates, and returns both the
    :class:`Estimate` (with the across-epoch variance of the mean) and
    the t-distribution 95% interval the method would report.
    """
    if epochs < 2:
        raise EstimationError("split-sample needs at least 2 epochs")
    rng = rng if rng is not None else np.random.default_rng()
    values = np.array(
        [
            _epoch_estimate(
                left, right, left_key, right_key, f_expr, n_left, n_right, rng
            )
            for _ in range(epochs)
        ]
    )
    mean = float(values.mean())
    var_of_mean = float(values.var(ddof=1)) / epochs
    est = Estimate(
        value=mean,
        variance_raw=var_of_mean,
        n_sample=epochs * (n_left + n_right),
        label="split-sample-WR",
        extras={"epochs": epochs, "epoch_values": values.tolist()},
    )
    half = float(student_t.ppf(0.975, epochs - 1)) * float(
        np.sqrt(var_of_mean)
    )
    ci = ConfidenceInterval(mean - half, mean + half, 0.95, "t")
    return est, ci
