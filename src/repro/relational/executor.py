"""Plan execution over the columnar engine.

The executor materializes each node bottom-up.  Sampling nodes draw
from the supplied RNG (``TableSample``) or evaluate their deterministic
lineage hash (``LineageSample``).  ``GUSNode`` is analysis-only and
refuses to execute, matching the paper's quasi-operator semantics.

Joins are equi-joins implemented with a sort + ``searchsorted``
multi-range gather — O((n+m)·log n) with fully vectorized index
construction.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.estimator import group_ids
from repro.errors import ExecutionError, PlanError, SchemaError
from repro.relational import plan as p
from repro.relational.aggregates import (
    evaluate_aggregates,
    evaluate_group_aggregates,
)
from repro.relational.table import Table


def join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs ``(li, ri)`` with ``left_keys[li] == right_keys[ri]``.

    Sorts the left side once, then finds each right key's run with two
    binary searches and expands the runs with a vectorized
    repeat/cumsum gather (no Python-level loop over rows).
    """
    if left_keys.shape[0] == 0 or right_keys.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(left_keys, kind="stable")
    sorted_keys = left_keys[order]
    starts = np.searchsorted(sorted_keys, right_keys, side="left")
    ends = np.searchsorted(sorted_keys, right_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ri = np.repeat(np.arange(right_keys.shape[0], dtype=np.int64), counts)
    # Positions within each run: global arange minus each run's offset.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - offsets
    li = order[np.repeat(starts, counts) + within]
    return li, ri


def _composite_key(columns: list[np.ndarray]) -> np.ndarray:
    """Collapse a multi-column key into a single sortable array.

    Multi-key joins reduce to single-key by grouping: rows with equal
    key tuples receive equal dense group ids.
    """
    if len(columns) == 1:
        return columns[0]
    gids, _ = group_ids(columns, columns[0].shape[0])
    return gids


class Executor:
    """Executes plans against a named-table catalog."""

    def __init__(
        self,
        catalog: Mapping[str, Table],
        rng: np.random.Generator | None = None,
    ) -> None:
        self.catalog = dict(catalog)
        self.rng = rng if rng is not None else np.random.default_rng()

    def execute(self, node: p.PlanNode) -> Table:
        """Materialize the plan bottom-up."""
        handler = self._HANDLERS.get(type(node))
        if handler is None:
            raise ExecutionError(f"cannot execute {type(node).__name__}")
        return handler(self, node)

    # -- node handlers ----------------------------------------------------

    def _scan(self, node: p.Scan) -> Table:
        try:
            base = self.catalog[node.table_name]
        except KeyError:
            raise PlanError(
                f"unknown table {node.table_name!r}; "
                f"catalog has {sorted(self.catalog)}"
            ) from None
        return base.with_lineage(
            node.table_name, np.arange(base.n_rows, dtype=np.int64)
        )

    def _table_sample(self, node: p.TableSample) -> Table:
        table = self.execute(node.child)
        draw = node.method.draw(table.n_rows, self.rng)
        relation = node.child.table_name
        return table.with_lineage(relation, draw.lineage).filter(draw.mask)

    def _lineage_sample(self, node: p.LineageSample) -> Table:
        table = self.execute(node.child)
        missing = set(node.sampler.rates) - set(table.lineage)
        if missing:
            raise ExecutionError(
                f"lineage columns {sorted(missing)} absent at LineageSample"
            )
        return table.filter(node.sampler.keep(table.lineage))

    def _gus(self, node: p.GUSNode) -> Table:
        raise ExecutionError(
            "GUS is a quasi-operator used for analysis only; executable "
            "plans carry TableSample/LineageSample nodes instead"
        )

    def _select(self, node: p.Select) -> Table:
        table = self.execute(node.child)
        return table.filter(node.predicate.eval(table))

    def _project(self, node: p.Project) -> Table:
        table = self.execute(node.child)
        if node.outputs is None:
            return table
        columns = {
            name: expr.eval(table) for name, expr in node.outputs.items()
        }
        return Table(table.name, columns, table.lineage)

    def _join(self, node: p.Join) -> Table:
        left = self.execute(node.left)
        right = self.execute(node.right)
        lkey = _composite_key([left.column(k) for k in node.left_keys])
        rkey = _composite_key([right.column(k) for k in node.right_keys])
        li, ri = join_indices(lkey, rkey)
        return self._combine(left, right, li, ri)

    def _cross(self, node: p.CrossProduct) -> Table:
        left = self.execute(node.left)
        right = self.execute(node.right)
        li = np.repeat(
            np.arange(left.n_rows, dtype=np.int64), right.n_rows
        )
        ri = np.tile(np.arange(right.n_rows, dtype=np.int64), left.n_rows)
        return self._combine(left, right, li, ri)

    @staticmethod
    def _combine(
        left: Table, right: Table, li: np.ndarray, ri: np.ndarray
    ) -> Table:
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise SchemaError(
                f"join sides share column names {sorted(overlap)}"
            )
        columns = {n: arr[li] for n, arr in left.columns.items()}
        columns.update({n: arr[ri] for n, arr in right.columns.items()})
        lineage = {r: ids[li] for r, ids in left.lineage.items()}
        lineage.update({r: ids[ri] for r, ids in right.lineage.items()})
        return Table(None, columns, lineage)

    def _union(self, node: p.Union) -> Table:
        left = self.execute(node.left)
        right = self.execute(node.right)
        stacked_cols = {
            n: np.concatenate([left.column(n), right.column(n)])
            for n in left.columns
        }
        stacked_lin = {
            r: np.concatenate([left.lineage[r], right.lineage[r]])
            for r in left.lineage
        }
        stacked = Table(None, stacked_cols, stacked_lin)
        # Deduplicate by full lineage (Prop 7 requires set semantics).
        rels = sorted(stacked.lineage)
        gids, n_groups = group_ids(
            [stacked.lineage[r] for r in rels], stacked.n_rows
        )
        first = np.full(n_groups, -1, dtype=np.int64)
        # np.minimum.at keeps the first (lowest-index) occurrence.
        first[:] = stacked.n_rows
        np.minimum.at(first, gids, np.arange(stacked.n_rows))
        return stacked.take(np.sort(first))

    def _intersect(self, node: p.Intersect) -> Table:
        left = self.execute(node.left)
        right = self.execute(node.right)
        rels = sorted(left.lineage)
        combined_cols = [
            np.concatenate([left.lineage[r], right.lineage[r]]) for r in rels
        ]
        n_total = left.n_rows + right.n_rows
        gids, n_groups = group_ids(combined_cols, n_total)
        in_right = np.zeros(n_groups, dtype=bool)
        in_right[gids[left.n_rows :]] = True
        return left.filter(in_right[gids[: left.n_rows]])

    def _aggregate(self, node: p.Aggregate) -> Table:
        table = self.execute(node.child)
        return evaluate_aggregates(table, node.specs)

    def _group_aggregate(self, node: p.GroupAggregate) -> Table:
        table = self.execute(node.child)
        return evaluate_group_aggregates(
            table, node.keys, node.specs, node.having
        )

    _HANDLERS = {
        p.Scan: _scan,
        p.TableSample: _table_sample,
        p.LineageSample: _lineage_sample,
        p.GUSNode: _gus,
        p.Select: _select,
        p.Project: _project,
        p.Join: _join,
        p.CrossProduct: _cross,
        p.Union: _union,
        p.Intersect: _intersect,
        p.Aggregate: _aggregate,
        p.GroupAggregate: _group_aggregate,
    }
