"""Plan execution over the columnar engine.

The executor materializes each node bottom-up.  Sampling nodes draw
from the supplied RNG (``TableSample``) or evaluate their deterministic
lineage hash (``LineageSample``).  ``GUSNode`` is analysis-only and
refuses to execute, matching the paper's quasi-operator semantics.

Joins are equi-joins implemented with a sort + ``searchsorted``
multi-range gather — O((n+m)·log n) with fully vectorized index
construction.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.estimator import group_firsts, group_ids
from repro.errors import ExecutionError, PlanError, SchemaError
from repro.obs.trace import get_tracer
from repro.relational import plan as p
from repro.relational.aggregates import (
    evaluate_aggregates,
    evaluate_group_aggregates,
)
from repro.relational.table import Table


def join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs ``(li, ri)`` with ``left_keys[li] == right_keys[ri]``.

    Sorts the left side once, then finds each right key's run with two
    binary searches and expands the runs with a vectorized
    repeat/cumsum gather (no Python-level loop over rows).
    """
    if left_keys.shape[0] == 0 or right_keys.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(left_keys, kind="stable")
    return probe_sorted(left_keys[order], order, right_keys)


def probe_sorted(
    sorted_keys: np.ndarray,
    left_positions: np.ndarray,
    right_keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe an already-sorted build side.

    ``sorted_keys`` are the build keys in ascending order and
    ``left_positions[i]`` the original row index of ``sorted_keys[i]``.
    Returns ``(li, ri)`` in the canonical join output order: right keys
    major, matching left rows ascending within each (the stable sort
    guarantees run order equals original left row order).  This is the
    shared probe core of the serial join and the chunked pipeline's
    partition-local build/probe.
    """
    empty = np.empty(0, dtype=np.int64)
    n_right = right_keys.shape[0]
    if sorted_keys.shape[0] == 0 or n_right == 0:
        return empty, empty
    # Foreign keys arrive in runs of equal values (a fact table clusters
    # its parent key); binary-search once per run, not once per row.
    # NaNs compare unequal to themselves so each gets its own run —
    # correct, merely uncompressed.
    run_starts = None
    if n_right >= 64 and right_keys.dtype.kind != "O":
        new_run = np.empty(n_right, dtype=bool)
        new_run[0] = True
        np.not_equal(right_keys[1:], right_keys[:-1], out=new_run[1:])
        n_runs = int(np.count_nonzero(new_run))
        if 2 * n_runs <= n_right:
            run_starts = new_run
    if run_starts is not None:
        run_ids = np.cumsum(run_starts) - 1
        reps = right_keys[run_starts]
        starts = np.searchsorted(sorted_keys, reps, side="left")[run_ids]
        ends = np.searchsorted(sorted_keys, reps, side="right")[run_ids]
    else:
        starts = np.searchsorted(sorted_keys, right_keys, side="left")
        ends = np.searchsorted(sorted_keys, right_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return empty, empty
    ri = np.repeat(np.arange(right_keys.shape[0], dtype=np.int64), counts)
    # Positions within each run: global arange minus each run's offset.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - offsets
    li = left_positions[np.repeat(starts, counts) + within]
    return li, ri


def join_codes(
    left_cols: list[np.ndarray], right_cols: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Encode both sides' join keys into directly comparable arrays.

    Single numeric columns join on their raw values (the int64 fast
    path feeds numpy's radix sort).  Object/string columns and
    multi-column keys are *jointly* factorized to dense int64 codes —
    one grouping pass over the concatenated key columns — so the
    sort + ``searchsorted`` probe runs on radix-friendly int64 instead
    of comparing Python objects element by element.

    Joint factorization is also what makes multi-column keys correct:
    codes assigned per side independently would be incomparable (side
    A's code 0 and side B's code 0 can encode different key tuples).
    Float key columns group under numpy's sort total order — all NaNs
    equal, sorted last — matching exactly what the raw-value
    sort/searchsorted path does with NaN keys.
    """
    if len(left_cols) == 1:
        lk, rk = left_cols[0], right_cols[0]
        if lk.dtype.kind in "iufb" and rk.dtype.kind in "iufb":
            return lk, rk
    n_left = left_cols[0].shape[0]
    n_right = right_cols[0].shape[0]
    n_total = n_left + n_right
    expanded: list[np.ndarray] = []
    for lc, rc in zip(left_cols, right_cols):
        combined = np.concatenate([lc, rc])
        if combined.dtype.kind == "f":
            # Split into (value-with-NaN-filled, is-NaN): grouping then
            # equates NaNs with each other and orders them last, i.e.
            # numpy's sort order, so output row order matches the
            # raw-value probe exactly.
            isnan = np.isnan(combined)
            expanded.append(np.where(isnan, 0.0, combined))
            expanded.append(isnan)
        else:
            expanded.append(combined)
    codes, _ = group_ids(expanded, n_total)
    return codes[:n_left], codes[n_left:]


def join_rows(
    left: Table,
    right: Table,
    left_keys: tuple[str, ...] | list[str],
    right_keys: tuple[str, ...] | list[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Matching row-index pairs of an equi-join between two tables."""
    lkey, rkey = join_codes(
        [left.column(k) for k in left_keys],
        [right.column(k) for k in right_keys],
    )
    return join_indices(lkey, rkey)


def combine_rows(
    left: Table, right: Table, li: np.ndarray, ri: np.ndarray
) -> Table:
    """Gather matched rows of a join/cross into one output table."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise SchemaError(
            f"join sides share column names {sorted(overlap)}"
        )
    columns = {n: arr[li] for n, arr in left.columns.items()}
    columns.update({n: arr[ri] for n, arr in right.columns.items()})
    lineage = {r: ids[li] for r, ids in left.lineage.items()}
    lineage.update({r: ids[ri] for r, ids in right.lineage.items()})
    return Table(None, columns, lineage)


def union_tables(left: Table, right: Table) -> Table:
    """Lineage-set union (Prop 7: deduplicate by full lineage)."""
    stacked_cols = {
        n: np.concatenate([left.column(n), right.column(n)])
        for n in left.columns
    }
    stacked_lin = {
        r: np.concatenate([left.lineage[r], right.lineage[r]])
        for r in left.lineage
    }
    stacked = Table(None, stacked_cols, stacked_lin)
    rels = sorted(stacked.lineage)
    gids, n_groups = group_ids(
        [stacked.lineage[r] for r in rels], stacked.n_rows
    )
    first = group_firsts(gids, n_groups, stacked.n_rows)
    return stacked.take(np.sort(first))


def intersect_tables(left: Table, right: Table) -> Table:
    """Lineage-set intersection (the paper's compaction view)."""
    rels = sorted(left.lineage)
    combined_cols = [
        np.concatenate([left.lineage[r], right.lineage[r]]) for r in rels
    ]
    n_total = left.n_rows + right.n_rows
    gids, n_groups = group_ids(combined_cols, n_total)
    in_right = np.zeros(n_groups, dtype=bool)
    in_right[gids[left.n_rows :]] = True
    return left.filter(in_right[gids[: left.n_rows]])


def _node_label(node: p.PlanNode) -> str:
    """Deterministic display label for a plan node's trace span."""
    if isinstance(node, p.Scan):
        return f"Scan({node.table_name})"
    if isinstance(node, p.TableSample):
        return f"TableSample({type(node.method).__name__})"
    if isinstance(node, p.Join):
        keys = ",".join(
            f"{l}={r}" for l, r in zip(node.left_keys, node.right_keys)
        )
        return f"Join({keys})"
    return type(node).__name__


class Executor:
    """Executes plans against a named-table catalog.

    When a trace is active on the constructing context, every executed
    node gets a span (kind ``node``) carrying ``rows_out``, and the
    sampling/join kernels get nested ``kernel`` spans; with no trace
    active the only cost is one ``None`` check per node.
    """

    def __init__(
        self,
        catalog: Mapping[str, Table],
        rng: np.random.Generator | None = None,
    ) -> None:
        self.catalog = dict(catalog)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.tracer = get_tracer()

    def execute(self, node: p.PlanNode) -> Table:
        """Materialize the plan bottom-up."""
        handler = self._HANDLERS.get(type(node))
        if handler is None:
            raise ExecutionError(f"cannot execute {type(node).__name__}")
        tracer = self.tracer
        if tracer is None:
            return handler(self, node)
        with tracer.span(_node_label(node), kind="node") as span:
            out = handler(self, node)
            span.attrs["rows_out"] = out.n_rows
        return out

    # -- node handlers ----------------------------------------------------

    def _scan(self, node: p.Scan) -> Table:
        try:
            base = self.catalog[node.table_name]
        except KeyError:
            raise PlanError(
                f"unknown table {node.table_name!r}; "
                f"catalog has {sorted(self.catalog)}"
            ) from None
        return base.with_lineage(
            node.table_name, np.arange(base.n_rows, dtype=np.int64)
        )

    def _table_sample(self, node: p.TableSample) -> Table:
        table = self.execute(node.child)
        if self.tracer is None:
            draw = node.method.draw(table.n_rows, self.rng)
        else:
            with self.tracer.span("draw.table_sample", kind="kernel"):
                draw = node.method.draw(table.n_rows, self.rng)
        relation = node.child.table_name
        return table.with_lineage(relation, draw.lineage).filter(draw.mask)

    def _lineage_sample(self, node: p.LineageSample) -> Table:
        table = self.execute(node.child)
        missing = set(node.sampler.rates) - set(table.lineage)
        if missing:
            raise ExecutionError(
                f"lineage columns {sorted(missing)} absent at LineageSample"
            )
        if self.tracer is None:
            keep = node.sampler.keep(table.lineage)
        else:
            with self.tracer.span("draw.lineage_hash", kind="kernel"):
                keep = node.sampler.keep(table.lineage)
        return table.filter(keep)

    def _gus(self, node: p.GUSNode) -> Table:
        raise ExecutionError(
            "GUS is a quasi-operator used for analysis only; executable "
            "plans carry TableSample/LineageSample nodes instead"
        )

    def _select(self, node: p.Select) -> Table:
        table = self.execute(node.child)
        return table.filter(node.predicate.eval(table))

    def _project(self, node: p.Project) -> Table:
        table = self.execute(node.child)
        if node.outputs is None:
            return table
        columns = {
            name: expr.eval(table) for name, expr in node.outputs.items()
        }
        return Table(table.name, columns, table.lineage)

    def _join(self, node: p.Join) -> Table:
        left = self.execute(node.left)
        right = self.execute(node.right)
        if self.tracer is None:
            li, ri = join_rows(left, right, node.left_keys, node.right_keys)
            return self._combine(left, right, li, ri)
        with self.tracer.span("join.factorize_probe", kind="kernel") as sp:
            li, ri = join_rows(left, right, node.left_keys, node.right_keys)
            sp.attrs["matches"] = int(li.shape[0])
        with self.tracer.span("join.gather", kind="kernel"):
            return self._combine(left, right, li, ri)

    def _cross(self, node: p.CrossProduct) -> Table:
        left = self.execute(node.left)
        right = self.execute(node.right)
        li = np.repeat(
            np.arange(left.n_rows, dtype=np.int64), right.n_rows
        )
        ri = np.tile(np.arange(right.n_rows, dtype=np.int64), left.n_rows)
        return self._combine(left, right, li, ri)

    @staticmethod
    def _combine(
        left: Table, right: Table, li: np.ndarray, ri: np.ndarray
    ) -> Table:
        return combine_rows(left, right, li, ri)

    def _union(self, node: p.Union) -> Table:
        return union_tables(self.execute(node.left), self.execute(node.right))

    def _intersect(self, node: p.Intersect) -> Table:
        return intersect_tables(
            self.execute(node.left), self.execute(node.right)
        )

    def _aggregate(self, node: p.Aggregate) -> Table:
        table = self.execute(node.child)
        return evaluate_aggregates(table, node.specs)

    def _group_aggregate(self, node: p.GroupAggregate) -> Table:
        table = self.execute(node.child)
        return evaluate_group_aggregates(
            table, node.keys, node.specs, node.having
        )

    _HANDLERS = {
        p.Scan: _scan,
        p.TableSample: _table_sample,
        p.LineageSample: _lineage_sample,
        p.GUSNode: _gus,
        p.Select: _select,
        p.Project: _project,
        p.Join: _join,
        p.CrossProduct: _cross,
        p.Union: _union,
        p.Intersect: _intersect,
        p.Aggregate: _aggregate,
        p.GroupAggregate: _group_aggregate,
    }
