"""Scalar and boolean expressions, evaluated column-at-a-time.

Expressions form the ``f`` in the paper's SUM-like aggregates
``A_f(S) = Σ_{t∈S} f(t)`` as well as selection predicates.  They are
immutable trees supporting Python operator overloading::

    revenue = col("l_discount") * (lit(1.0) - col("l_tax"))
    pred = (col("l_extendedprice") > 100.0) & (col("l_tax") <= 0.05)

Every expression exposes a structural ``key()`` used for plan
fingerprinting (the rewriter must recognise "the same expression" to
apply the union/intersection rules).
"""

from __future__ import annotations

import operator
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.errors import SchemaError
from repro.relational.table import Table

_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARE: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Expr:
    """Base expression node."""

    def eval(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    def columns_used(self) -> frozenset[str]:
        raise NotImplementedError

    def key(self) -> tuple:
        """Structural identity for fingerprinting."""
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------

    def _coerce(self, other: Any) -> "Expr":
        return other if isinstance(other, Expr) else Lit(other)

    def __add__(self, other: Any) -> "Expr":
        return BinOp("+", self, self._coerce(other))

    def __radd__(self, other: Any) -> "Expr":
        return BinOp("+", self._coerce(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return BinOp("-", self, self._coerce(other))

    def __rsub__(self, other: Any) -> "Expr":
        return BinOp("-", self._coerce(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return BinOp("*", self, self._coerce(other))

    def __rmul__(self, other: Any) -> "Expr":
        return BinOp("*", self._coerce(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return BinOp("/", self, self._coerce(other))

    def __rtruediv__(self, other: Any) -> "Expr":
        return BinOp("/", self._coerce(other), self)

    def __lt__(self, other: Any) -> "Expr":
        return Comparison("<", self, self._coerce(other))

    def __le__(self, other: Any) -> "Expr":
        return Comparison("<=", self, self._coerce(other))

    def __gt__(self, other: Any) -> "Expr":
        return Comparison(">", self, self._coerce(other))

    def __ge__(self, other: Any) -> "Expr":
        return Comparison(">=", self, self._coerce(other))

    def eq(self, other: Any) -> "Expr":
        """SQL ``=`` (named method: Python ``==`` is kept for identity)."""
        return Comparison("=", self, self._coerce(other))

    def ne(self, other: Any) -> "Expr":
        return Comparison("!=", self, self._coerce(other))

    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


class Col(Expr):
    """A column reference."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def columns_used(self) -> frozenset[str]:
        return frozenset([self.name])

    def key(self) -> tuple:
        return ("col", self.name)

    def __repr__(self) -> str:
        return self.name


class Lit(Expr):
    """A literal constant, broadcast over the table."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, table: Table) -> np.ndarray:
        return np.full(table.n_rows, self.value)

    def columns_used(self) -> frozenset[str]:
        return frozenset()

    def key(self) -> tuple:
        return ("lit", self.value)

    def __repr__(self) -> str:
        return repr(self.value)


class BinOp(Expr):
    """Arithmetic: ``+ - * /``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH:
            raise SchemaError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, table: Table) -> np.ndarray:
        return _ARITH[self.op](self.left.eval(table), self.right.eval(table))

    def columns_used(self) -> frozenset[str]:
        return self.left.columns_used() | self.right.columns_used()

    def key(self) -> tuple:
        return ("bin", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Comparison(Expr):
    """Comparison producing a boolean column."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARE:
            raise SchemaError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, table: Table) -> np.ndarray:
        out = _COMPARE[self.op](self.left.eval(table), self.right.eval(table))
        return np.asarray(out, dtype=bool)

    def columns_used(self) -> frozenset[str]:
        return self.left.columns_used() | self.right.columns_used()

    def key(self) -> tuple:
        return ("cmp", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def eval(self, table: Table) -> np.ndarray:
        return self.left.eval(table) & self.right.eval(table)

    def columns_used(self) -> frozenset[str]:
        return self.left.columns_used() | self.right.columns_used()

    def key(self) -> tuple:
        return ("and", self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def eval(self, table: Table) -> np.ndarray:
        return self.left.eval(table) | self.right.eval(table)

    def columns_used(self) -> frozenset[str]:
        return self.left.columns_used() | self.right.columns_used()

    def key(self) -> tuple:
        return ("or", self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(Expr):
    __slots__ = ("child",)

    def __init__(self, child: Expr) -> None:
        self.child = child

    def eval(self, table: Table) -> np.ndarray:
        return ~self.child.eval(table)

    def columns_used(self) -> frozenset[str]:
        return self.child.columns_used()

    def key(self) -> tuple:
        return ("not", self.child.key())

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


# -- convenience builders ---------------------------------------------------


def col(name: str) -> Col:
    """Column reference builder."""
    return Col(name)


def lit(value: Any) -> Lit:
    """Literal builder."""
    return Lit(value)


def and_(*exprs: Expr) -> Expr:
    """Conjunction of one or more predicates."""
    if not exprs:
        raise SchemaError("and_() needs at least one predicate")
    acc = exprs[0]
    for e in exprs[1:]:
        acc = And(acc, e)
    return acc


def or_(*exprs: Expr) -> Expr:
    """Disjunction of one or more predicates."""
    if not exprs:
        raise SchemaError("or_() needs at least one predicate")
    acc = exprs[0]
    for e in exprs[1:]:
        acc = Or(acc, e)
    return acc


def not_(expr: Expr) -> Expr:
    """Negation builder."""
    return Not(expr)
