"""Columnar tables with lineage columns.

A :class:`Table` stores data columns and, separately, one int64
*lineage* column per base relation that contributed rows.  Lineage ids
dissociate a tuple's identity from its content (the paper's Section 4.2
requirement): the estimator only ever compares them for equality.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import SchemaError
from repro.relational.schema import Column, ColumnType, Schema


def _as_column_array(values: Any) -> np.ndarray:
    """Coerce input values to a 1-D storage array."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise SchemaError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in "US":
        arr = arr.astype(object)
    return arr


class Table:
    """An immutable-by-convention columnar table.

    ``columns`` maps column names to equal-length arrays; ``lineage``
    maps base-relation names to int64 id arrays of the same length.
    All transformation methods return new tables.
    """

    __slots__ = (
        "name",
        "schema",
        "columns",
        "lineage",
        "n_rows",
        "version",
        "_mmap_path",
        "_block_stats",
    )

    def __init__(
        self,
        name: str | None,
        columns: Mapping[str, Any],
        lineage: Mapping[str, Any] | None = None,
    ) -> None:
        converted: dict[str, np.ndarray] = {
            col_name: _as_column_array(values)
            for col_name, values in columns.items()
        }
        lengths = {arr.shape[0] for arr in converted.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        if lengths:
            self.n_rows = lengths.pop()
        elif lineage:
            # A table may carry lineage only (e.g. a column-pruned
            # COUNT(*) pipeline); the row count then comes from it.
            self.n_rows = np.asarray(next(iter(lineage.values()))).shape[0]
        else:
            self.n_rows = 0
        self.name = name
        self.columns = converted
        self.schema = Schema(
            Column(col_name, ColumnType.from_dtype(arr.dtype))
            for col_name, arr in converted.items()
        )
        lin: dict[str, np.ndarray] = {}
        for rel, ids in (lineage or {}).items():
            ids_arr = np.asarray(ids, dtype=np.int64)
            if ids_arr.shape != (self.n_rows,):
                raise SchemaError(
                    f"lineage column {rel!r} has shape {ids_arr.shape}, "
                    f"expected ({self.n_rows},)"
                )
            lin[rel] = ids_arr
        self.lineage = lin
        self.version = None
        self._mmap_path = None
        self._block_stats = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def _share(
        cls,
        name: str | None,
        columns: dict[str, np.ndarray],
        lineage: dict[str, np.ndarray],
        schema: Schema,
        n_rows: int,
    ) -> "Table":
        """Build a table from already-validated arrays, skipping checks.

        The zero-copy constructor behind :meth:`take`, :meth:`filter`,
        :meth:`slice`, :meth:`with_lineage`, and :meth:`select_columns`:
        those transformations cannot change dtypes or introduce ragged
        columns, so re-validating (and rebuilding the schema) per chunk
        per operator would be pure overhead on the hot path.
        """
        table = cls.__new__(cls)
        table.name = name
        table.columns = columns
        table.lineage = lineage
        table.schema = schema
        table.n_rows = n_rows
        table.version = None
        table._mmap_path = None
        table._block_stats = None
        return table

    @classmethod
    def from_rows(
        cls,
        name: str | None,
        column_names: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table from an iterable of row tuples."""
        materialized = [tuple(row) for row in rows]
        if materialized and any(len(r) != len(column_names) for r in materialized):
            raise SchemaError("row arity does not match column names")
        columns = {
            col_name: np.array([row[i] for row in materialized])
            if materialized
            else np.empty(0, dtype=np.float64)
            for i, col_name in enumerate(column_names)
        }
        return cls(name, columns)

    @classmethod
    def from_mmap(cls, path: Any, name: str | None = None) -> "Table":
        """Open a persisted columnar table as zero-copy memory maps.

        Data and lineage columns are ``np.memmap`` views over the files
        on disk (dictionary-encoded string columns decode to object
        arrays — the documented exception), so slicing chunks out of the
        table never copies and the OS pages data in on demand.
        """
        from repro.colstore.format import load_columnar

        data = load_columnar(path)
        table = cls(
            name if name is not None else data.name,
            data.columns,
            data.lineage,
        )
        table._mmap_path = str(data.path)
        table._block_stats = data.block_stats
        return table

    def persist(self, path: Any, *, block_rows: int = 1 << 20) -> "Table":
        """Write this table to ``path`` and return an mmap-backed view.

        Rows stream out in ``block_rows`` blocks (each becomes one
        min/max stats block for scan pruning); the returned table reads
        back through :meth:`from_mmap`, so the in-RAM copy can be
        dropped.
        """
        from repro.colstore.format import ColumnarWriter

        with ColumnarWriter(
            path, self.name, list(self.columns), list(self.lineage)
        ) as writer:
            for start in range(0, max(self.n_rows, 1), block_rows):
                chunk = self.slice(start, start + block_rows)
                writer.append(chunk.columns, chunk.lineage)
        return Table.from_mmap(path, self.name)

    @property
    def is_mmap(self) -> bool:
        """Whether this table is a whole-table view over a colstore dir."""
        return self._mmap_path is not None

    @property
    def block_stats(self) -> Mapping[str, list] | None:
        """Per-block (start, stop, min, max) stats, if mmap-backed."""
        return self._block_stats

    def __reduce__(self):
        # Mmap-backed whole tables pickle as a (path, name) descriptor
        # so process-pool payloads stay O(bytes) regardless of row
        # count; everything else rebuilds from its arrays.
        if self._mmap_path is not None:
            return (
                _table_from_mmap,
                (self._mmap_path, self.name, self.version),
            )
        return (
            _table_rebuild,
            (self.name, self.columns, self.lineage, self.version),
        )

    @property
    def lineage_schema(self) -> frozenset[str]:
        """Base relations this table carries lineage for."""
        return frozenset(self.lineage)

    # -- access -----------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {list(self.columns)}"
            ) from None

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize as row tuples (test/debug helper)."""
        names = self.schema.names
        return [
            tuple(self.columns[n][i] for n in names) for i in range(self.n_rows)
        ]

    def lineage_rows(self) -> list[tuple[int, ...]]:
        """Lineage tuples in canonical (sorted relation name) order."""
        rels = sorted(self.lineage)
        return [
            tuple(int(self.lineage[r][i]) for r in rels)
            for i in range(self.n_rows)
        ]

    # -- transformations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position (data and lineage together)."""
        return Table._share(
            self.name,
            {n: arr[indices] for n, arr in self.columns.items()},
            {r: ids[indices] for r, ids in self.lineage.items()},
            self.schema,
            int(np.asarray(indices).shape[0]),
        )

    def slice(self, start: int, stop: int) -> "Table":
        """Contiguous row range as zero-copy views (the chunk primitive)."""
        start = max(0, min(int(start), self.n_rows))
        stop = max(start, min(int(stop), self.n_rows))
        return Table._share(
            self.name,
            {n: arr[start:stop] for n, arr in self.columns.items()},
            {r: ids[start:stop] for r, ids in self.lineage.items()},
            self.schema,
            stop - start,
        )

    def filter(self, mask: np.ndarray) -> "Table":
        """Keep rows where ``mask`` is true.

        An all-true mask returns ``self`` unchanged — filters run once
        per chunk per operator in the pipeline, so the common
        nothing-dropped case must not pay for a full gather.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_rows,):
            raise SchemaError(
                f"mask shape {mask.shape} does not match {self.n_rows} rows"
            )
        if mask.all():
            return self
        return self.take(np.flatnonzero(mask))

    def with_lineage(self, relation: str, ids: np.ndarray) -> "Table":
        """Attach (or replace) the lineage column of one base relation."""
        ids_arr = np.asarray(ids, dtype=np.int64)
        if ids_arr.shape != (self.n_rows,):
            raise SchemaError(
                f"lineage column {relation!r} has shape {ids_arr.shape}, "
                f"expected ({self.n_rows},)"
            )
        new_lineage = dict(self.lineage)
        new_lineage[relation] = ids_arr
        return Table._share(
            self.name,
            dict(self.columns),
            new_lineage,
            self.schema,
            self.n_rows,
        )

    def select_columns(self, names: Sequence[str]) -> "Table":
        """Project to the named data columns (lineage always survives).

        Selecting the identity column set (same names, same order)
        returns ``self`` unchanged.
        """
        names = list(names)
        if names == list(self.columns):
            return self
        return Table(
            self.name,
            {n: self.column(n) for n in names},
            self.lineage,
        )

    def rename(self, name: str | None) -> "Table":
        if name == self.name:
            return self
        renamed = Table._share(
            name,
            dict(self.columns),
            dict(self.lineage),
            self.schema,
            self.n_rows,
        )
        # Renaming is the one share-path transform that keeps the full
        # row set, so the mmap descriptor (and its scan-prune stats)
        # survives — Database.register renames on attach.  The version
        # stamp does NOT: a renamed table is a new identity.
        renamed._mmap_path = self._mmap_path
        renamed._block_stats = self._block_stats
        return renamed

    def with_version(self, version: int | None) -> "Table":
        """The same table contents stamped as snapshot ``version``.

        Zero-copy: columns, lineage, and any mmap descriptor are
        shared — a snapshot is identity, not data.
        """
        if version == self.version:
            return self
        stamped = Table._share(
            self.name,
            self.columns,
            self.lineage,
            self.schema,
            self.n_rows,
        )
        stamped.version = version
        stamped._mmap_path = self._mmap_path
        stamped._block_stats = self._block_stats
        return stamped

    def with_columns(self, updates: Mapping[str, Any]) -> "Table":
        """Copy-on-write column update: replace/add only ``updates``.

        Columns not named in ``updates`` stay the *same arrays* as this
        table's (zero-copy sharing), which is what makes
        snapshot-then-mutate cheap: after
        ``db.update_table(t, old.with_columns({...}))`` the snapshot and
        the live table share every untouched column.  Row positions are
        unchanged, so lineage (the coordinated-sampling key) carries
        over; new columns must match the row count.
        """
        merged = dict(self.columns)
        for col_name, values in updates.items():
            arr = _as_column_array(values)
            if arr.shape != (self.n_rows,):
                raise SchemaError(
                    f"column {col_name!r} has shape {arr.shape}, "
                    f"expected ({self.n_rows},)"
                )
            merged[col_name] = arr
        return Table(self.name, merged, self.lineage)

    def head(self, k: int = 10) -> "Table":
        return self.take(np.arange(min(k, self.n_rows)))

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{c.name}:{c.type.value}" for c in self.schema.columns
        )
        lin = ",".join(sorted(self.lineage)) or "-"
        backing = ", mmap" if self._mmap_path is not None else ""
        stamp = f", version={self.version}" if self.version is not None else ""
        return (
            f"Table({self.name or '<anon>'}, rows={self.n_rows}, "
            f"cols=[{cols}], lineage=[{lin}]{stamp}{backing})"
        )


def _table_from_mmap(
    path: str, name: str | None, version: int | None = None
) -> Table:
    """Unpickle target: reattach a descriptor-pickled mmap table."""
    return Table.from_mmap(path, name).with_version(version)


def _table_rebuild(
    name: str | None,
    columns: Mapping[str, Any],
    lineage: Mapping[str, Any],
    version: int | None = None,
) -> Table:
    """Unpickle target: rebuild an in-RAM table from its arrays."""
    return Table(name, columns, lineage).with_version(version)
