"""Schemas: typed, ordered column sets with unique names.

Column names are treated as globally meaningful (TPC-H style prefixes —
``l_orderkey``, ``o_orderkey`` — keep them unique across tables), which
lets expressions reference columns without alias resolution machinery.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The value domains the engine supports."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"

    @classmethod
    def from_dtype(cls, dtype: np.dtype) -> "ColumnType":
        """Map a numpy dtype to the closest engine type."""
        kind = np.dtype(dtype).kind
        if kind in "iu":
            return cls.INT64
        if kind == "f":
            return cls.FLOAT64
        if kind == "b":
            return cls.BOOL
        if kind in "UOS":
            return cls.STRING
        raise SchemaError(f"unsupported numpy dtype {dtype!r}")

    def to_dtype(self) -> np.dtype:
        """The numpy dtype used to store this column type."""
        if self is ColumnType.INT64:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT64:
            return np.dtype(np.float64)
        if self is ColumnType.BOOL:
            return np.dtype(np.bool_)
        return np.dtype(object)

    @property
    def numeric(self) -> bool:
        return self in (ColumnType.INT64, ColumnType.FLOAT64)


class Column:
    """A named, typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: ColumnType) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid column name {name!r}")
        self.name = name
        self.type = type

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.type == other.type
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type))

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type.value})"


class Schema:
    """An ordered collection of uniquely-named columns."""

    __slots__ = ("columns", "_by_name")

    def __init__(self, columns: Iterable[Column]) -> None:
        cols = tuple(columns)
        names = [c.name for c in cols]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"duplicate column names {sorted(dupes)}")
        self.columns = cols
        self._by_name = {c.name: c for c in cols}

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {list(self.names)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}: {c.type.value}" for c in self.columns)
        return f"Schema({inner})"

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join/cross product; names must stay unique."""
        return Schema(self.columns + other.columns)

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to the given columns, in the given order."""
        return Schema(self[name] for name in names)
