"""Partition-parallel, chunked plan execution.

The legacy :class:`~repro.relational.executor.Executor` materializes
every plan node as one whole table.  :class:`ChunkedExecutor` replaces
that with a partition pipeline: a plan compiles into *(tasks, fn)*
sources where each task is one chunk of base rows and ``fn`` runs the
whole operator stack — scan → sample → filter → project → join probe —
over that chunk.  Tasks are pure and independent, so a
:class:`~repro.parallel.ChunkScheduler` runs them across workers while
the driver consumes results strictly in chunk order.

Reproducibility contract (tested property, not aspiration):

* **Worker invariance** — the same closures run regardless of worker
  count, and results are folded in task order, so any ``workers`` value
  produces bit-for-bit identical output.
* **Partition invariance** — randomness is a function of the *global*
  row position, never of chunk boundaries: in ``compat`` RNG mode every
  sampling node's draw is made once over the whole base table (in the
  same generator order the legacy executor uses, so results equal the
  serial engine's exactly); in ``spawn`` mode Bernoulli draws come from
  per-block streams spawned with ``numpy.random.SeedSequence`` spawn
  keys ``(node, block)``, so a chunk's mask depends only on which rows
  it covers.  Non-decomposable methods (without-replacement and block
  picks need the whole table) draw once from their node's own spawned
  stream.  Either way, any row partitioning yields the same sample.

Joins execute as partition-local build/probe: the build side is
materialized once, hash-partitioned on the (factorized) join key into
per-worker buckets, and probe chunks stream through — each output
chunk is emitted in the canonical (right-major, left-ascending) order
the serial sort-probe join produces, so concatenating the chunks
reproduces the serial join bit-for-bit while the join *output* is
never materialized by streaming consumers.

Column pruning: estimation consumers pass the columns they need and
every operator forwards only those (plus whatever its own predicates
and keys read) — scans slice views instead of gathering, and join
probes gather a handful of arrays instead of both tables' full width.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from time import perf_counter_ns

import numpy as np

from repro.core.kernels import _finalize
from repro.errors import ExecutionError, PlanError
from repro.obs.trace import get_tracer
from repro.parallel import ChunkScheduler, worker_label
from repro.relational import expressions as ex
from repro.relational import plan as p
from repro.relational.aggregates import (
    evaluate_aggregates,
    evaluate_group_aggregates,
)
from repro.relational.executor import (
    combine_rows,
    intersect_tables,
    join_codes,
    probe_sorted,
    union_tables,
)
from repro.relational.partition import (
    DEFAULT_CHUNK_ROWS,
    chunk_bounds,
    required_alignment,
)
from repro.relational.table import Table
from repro.sampling.base import Draw
from repro.sampling.bernoulli import Bernoulli

__all__ = ["ChunkedExecutor", "RNG_BLOCK_ROWS", "concat_tables"]

#: Fixed RNG block granularity of ``spawn`` mode: Bernoulli masks are
#: drawn per 65536-row block from a stream spawned with spawn key
#: ``(node, block)``, so the mask of any row range is well defined
#: independently of chunk boundaries.
RNG_BLOCK_ROWS = 1 << 16

_RNG_MODES = ("compat", "spawn")


def concat_tables(chunks: list[Table]) -> Table:
    """Stack chunk tables (shared schema) back into one table."""
    if not chunks:
        raise ExecutionError("cannot concatenate zero chunks")
    if len(chunks) == 1:
        return chunks[0]
    first = chunks[0]
    columns = {
        name: np.concatenate([c.columns[name] for c in chunks])
        for name in first.columns
    }
    lineage = {
        rel: np.concatenate([c.lineage[rel] for c in chunks])
        for rel in first.lineage
    }
    return Table(first.name, columns, lineage)


# -- sampling draws ------------------------------------------------------


class _WholeDraw:
    """A sampling draw made once for the entire base table."""

    __slots__ = ("draw",)

    def __init__(self, draw: Draw) -> None:
        self.draw = draw

    def mask_range(self, start: int, stop: int) -> np.ndarray:
        return self.draw.mask[start:stop]

    def lineage_range(self, start: int, stop: int) -> np.ndarray:
        return self.draw.lineage[start:stop]


class _BlockBernoulliDraw:
    """Spawn-mode Bernoulli: per-block streams, no whole-table state.

    The mask of block ``b`` comes from
    ``SeedSequence(entropy, spawn_key=(node_index, b))`` — a pure
    function of the global row position, so any chunking of the rows
    reproduces the same sample and no O(table) mask is ever held.
    """

    __slots__ = ("p", "entropy", "node_index", "n_rows")

    def __init__(
        self, p: float, entropy: int, node_index: int, n_rows: int
    ) -> None:
        self.p = float(p)
        self.entropy = entropy
        self.node_index = node_index
        self.n_rows = n_rows

    def _block_mask(self, block: int) -> np.ndarray:
        length = min(RNG_BLOCK_ROWS, self.n_rows - block * RNG_BLOCK_ROWS)
        seq = np.random.SeedSequence(
            entropy=self.entropy, spawn_key=(self.node_index, block)
        )
        gen = np.random.Generator(np.random.PCG64(seq))
        return gen.random(length) < self.p

    def mask_range(self, start: int, stop: int) -> np.ndarray:
        if stop <= start:
            return np.zeros(0, dtype=bool)
        first = start // RNG_BLOCK_ROWS
        last = (stop - 1) // RNG_BLOCK_ROWS
        parts = [self._block_mask(b) for b in range(first, last + 1)]
        mask = parts[0] if len(parts) == 1 else np.concatenate(parts)
        base = first * RNG_BLOCK_ROWS
        return mask[start - base : stop - base]

    def lineage_range(self, start: int, stop: int) -> np.ndarray:
        return np.arange(start, stop, dtype=np.int64)


# -- hash-partitioned join build ----------------------------------------


def _key_bits(keys: np.ndarray) -> np.ndarray:
    """A uint64 view of join keys for deterministic bucketing.

    Equal keys must land in equal buckets, so float keys are
    canonicalized first: ``+ 0.0`` folds ``-0.0`` onto ``+0.0``, and
    every NaN maps to one quiet-NaN bit pattern (the probe's sort
    total order treats all NaNs as equal, so bucketing must too).
    """
    if keys.dtype.kind == "f":
        arr = keys.astype(np.float64) + 0.0
        bits = arr.view(np.uint64)
        return np.where(
            np.isnan(arr), np.uint64(0x7FF8000000000000), bits
        )
    return keys.astype(np.int64).view(np.uint64)


def _bucket_of(keys: np.ndarray, n_buckets: int) -> np.ndarray:
    if n_buckets <= 1:
        return np.zeros(keys.shape[0], dtype=np.int64)
    with np.errstate(over="ignore"):
        # The SplitMix64 finalizer from the shared kernel module — the
        # same mixing (and the same bits) the lineage hash uses.
        x = _finalize(_key_bits(keys))
    return (x % np.uint64(n_buckets)).astype(np.int64)


class _HashJoinBuild:
    """Build side of a chunked join, hash-partitioned on the key.

    Each bucket holds its keys sorted (stable, so equal keys stay in
    original row order) plus the owning global row indices.  Probing a
    chunk routes each probe row to its bucket, binary-searches the
    bucket, and restores the canonical (right-major, left-ascending)
    output order — the same order the serial sort-probe join emits.
    """

    __slots__ = ("n_buckets", "_sorted_keys", "_positions")

    def __init__(self, keys: np.ndarray, n_buckets: int) -> None:
        self.n_buckets = max(1, int(n_buckets))
        buckets = _bucket_of(keys, self.n_buckets)
        self._sorted_keys: list[np.ndarray] = []
        self._positions: list[np.ndarray] = []
        for b in range(self.n_buckets):
            idx = (
                np.flatnonzero(buckets == b)
                if self.n_buckets > 1
                else np.arange(keys.shape[0], dtype=np.int64)
            )
            order = np.argsort(keys[idx], kind="stable")
            self._sorted_keys.append(keys[idx][order])
            self._positions.append(idx[order])

    def probe(self, probe_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Match one probe chunk; canonical-order ``(li, ri_local)``."""
        if self.n_buckets == 1:
            # Single bucket: probe_sorted already emits canonical order.
            return probe_sorted(
                self._sorted_keys[0], self._positions[0], probe_keys
            )
        buckets = _bucket_of(probe_keys, self.n_buckets)
        li_parts: list[np.ndarray] = []
        ri_parts: list[np.ndarray] = []
        for b in range(self.n_buckets):
            sel = np.flatnonzero(buckets == b)
            if sel.size == 0:
                continue
            li_b, ri_within = probe_sorted(
                self._sorted_keys[b], self._positions[b], probe_keys[sel]
            )
            li_parts.append(li_b)
            ri_parts.append(sel[ri_within])
        if not li_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        li = np.concatenate(li_parts)
        ri = np.concatenate(ri_parts)
        order = np.lexsort((li, ri))
        return li[order], ri[order]


# -- picklable chunk operators -------------------------------------------
#
# Every compiled chunk function is a module-level ``__slots__`` class
# rather than a closure, so a spawn-mode process pool can pickle the
# whole operator stack once (pool initializer) and ship only (start,
# stop) task bounds per chunk.  Mmap-backed base tables pickle as
# (path, name) descriptors, so the broadcast payload stays O(bytes)
# regardless of table size.


def _identity(table: Table) -> Table:
    return table


class _ComposedTask:
    """``per_chunk ∘ fn`` as a picklable task callable."""

    __slots__ = ("fn", "per_chunk")

    def __init__(self, fn: Callable, per_chunk: Callable) -> None:
        self.fn = fn
        self.per_chunk = per_chunk

    def __call__(self, task):
        return self.per_chunk(self.fn(task))


class _TracedTask:
    """Task wrapper that measures its own chunk from inside the worker.

    The worker never touches the tracer: it returns the measurement and
    the driver records the span in chunk order, so span ids and tree
    shape are identical at every worker count.
    """

    __slots__ = ("fn", "per_chunk")

    def __init__(self, fn: Callable, per_chunk: Callable) -> None:
        self.fn = fn
        self.per_chunk = per_chunk

    def __call__(self, task):
        t0 = perf_counter_ns()
        chunk = self.fn(task)
        rows = chunk.n_rows
        out = self.per_chunk(chunk)
        return out, (t0, perf_counter_ns(), rows, worker_label())


class _ScanFn:
    """Slice one chunk out of a base table, column-pruned, zero-copy.

    Holds the base table itself (not pre-sliced views): an mmap-backed
    table then pickles as a descriptor and each worker maps the file
    once, paging in only the blocks its chunks touch.
    """

    __slots__ = ("table", "keep", "schema", "wrap")

    def __init__(self, table: Table, keep, schema, wrap) -> None:
        self.table = table
        self.keep = keep
        self.schema = schema
        self.wrap = wrap

    def __call__(self, bound: tuple[int, int]) -> Table:
        # Slice with an explicit row count: a fully pruned scan
        # (COUNT(*) reads no data columns) still carries its rows.
        start, stop = bound
        cols = self.table.columns
        chunk = Table._share(
            self.table.name,
            {n: cols[n][start:stop] for n in self.keep},
            {},
            self.schema,
            stop - start,
        )
        return self.wrap(chunk, start, stop)


class _LineageWrap:
    """Scan epilogue: attach positional lineage ids."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, chunk: Table, start: int, stop: int) -> Table:
        return chunk.with_lineage(
            self.name, np.arange(start, stop, dtype=np.int64)
        )


class _SampleWrap:
    """TableSample epilogue: lineage ids plus the draw's keep-mask."""

    __slots__ = ("name", "draw")

    def __init__(self, name: str, draw) -> None:
        self.name = name
        self.draw = draw

    def __call__(self, chunk: Table, start: int, stop: int) -> Table:
        kept = chunk.with_lineage(
            self.name, self.draw.lineage_range(start, stop)
        )
        return kept.filter(self.draw.mask_range(start, stop))


class _LineageSampleFn:
    """Un-fused lineage sample: filter the child chunk by lineage hash."""

    __slots__ = ("child_fn", "sampler")

    def __init__(self, child_fn: Callable, sampler) -> None:
        self.child_fn = child_fn
        self.sampler = sampler

    def __call__(self, task) -> Table:
        t = self.child_fn(task)
        return t.filter(self.sampler.keep(t.lineage))


class _SelectFn:
    __slots__ = ("child_fn", "predicate")

    def __init__(self, child_fn: Callable, predicate) -> None:
        self.child_fn = child_fn
        self.predicate = predicate

    def __call__(self, task) -> Table:
        t = self.child_fn(task)
        return t.filter(self.predicate.eval(t))


class _ProjectFn:
    __slots__ = ("child_fn", "outputs")

    def __init__(self, child_fn: Callable, outputs: dict) -> None:
        self.child_fn = child_fn
        self.outputs = outputs

    def __call__(self, task) -> Table:
        t = self.child_fn(task)
        return Table(
            t.name,
            {n: expr.eval(t) for n, expr in self.outputs.items()},
            t.lineage,
        )


def _sampler_filter(
    sampler, left_t: Table, rt: Table, li: np.ndarray, ri: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a fused lineage sample to index pairs pre-gather."""
    lin = {}
    for rel in sampler.rates:
        if rel in left_t.lineage:
            lin[rel] = left_t.lineage[rel][li]
        else:
            lin[rel] = rt.lineage[rel][ri]
    keep = sampler.keep(lin)
    return li[keep], ri[keep]


class _StreamJoinFn:
    """Single-numeric-key join probe over a streaming right side."""

    __slots__ = ("build", "right_fn", "key_name", "left_table", "sampler")

    def __init__(self, build, right_fn, key_name, left_table, sampler) -> None:
        self.build = build
        self.right_fn = right_fn
        self.key_name = key_name
        self.left_table = left_table
        self.sampler = sampler

    def __call__(self, task) -> Table:
        rt = self.right_fn(task)
        li, ri = self.build.probe(rt.column(self.key_name))
        if self.sampler is not None:
            li, ri = _sampler_filter(self.sampler, self.left_table, rt, li, ri)
        return combine_rows(self.left_table, rt, li, ri)


class _BufferedJoinFn:
    """Joint-factorized join probe over buffered right chunks."""

    __slots__ = ("build", "rights", "rcodes", "offsets", "left_table", "sampler")

    def __init__(
        self, build, rights, rcodes, offsets, left_table, sampler
    ) -> None:
        self.build = build
        self.rights = rights
        self.rcodes = rcodes
        self.offsets = offsets
        self.left_table = left_table
        self.sampler = sampler

    def __call__(self, index: int) -> Table:
        rt = self.rights[index]
        codes = self.rcodes[self.offsets[index] : self.offsets[index + 1]]
        li, ri = self.build.probe(codes)
        if self.sampler is not None:
            li, ri = _sampler_filter(self.sampler, self.left_table, rt, li, ri)
        return combine_rows(self.left_table, rt, li, ri)


class _CrossFn:
    __slots__ = ("left_fn", "right_table")

    def __init__(self, left_fn: Callable, right_table: Table) -> None:
        self.left_fn = left_fn
        self.right_table = right_table

    def __call__(self, task) -> Table:
        lt = self.left_fn(task)
        li = np.repeat(
            np.arange(lt.n_rows, dtype=np.int64), self.right_table.n_rows
        )
        ri = np.tile(
            np.arange(self.right_table.n_rows, dtype=np.int64), lt.n_rows
        )
        return combine_rows(lt, self.right_table, li, ri)


class _SliceFn:
    """Pipeline breakers re-chunk a materialized result by slicing."""

    __slots__ = ("table",)

    def __init__(self, table: Table) -> None:
        self.table = table

    def __call__(self, bound: tuple[int, int]) -> Table:
        return self.table.slice(*bound)


# -- block-stat scan pruning ----------------------------------------------

#: Comparison operators a (col, op, literal) conjunct can prune on.
_PRUNE_OPS = frozenset(("=", "<", "<=", ">", ">="))
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _predicate_conjuncts(predicate) -> list[tuple[str, str, float]]:
    """Extract ``col OP literal`` conjuncts reachable through ANDs.

    Only conjunctions are safe to prune on (an OR branch could still
    match); anything that is not a plain column-vs-numeric-literal
    comparison is ignored, which is always conservative.
    """
    out: list[tuple[str, str, float]] = []

    def walk(node) -> None:
        if isinstance(node, ex.And):
            walk(node.left)
            walk(node.right)
            return
        if not isinstance(node, ex.Comparison) or node.op not in _PRUNE_OPS:
            return
        left, right, op = node.left, node.right, node.op
        if isinstance(left, ex.Lit) and isinstance(right, ex.Col):
            left, right, op = right, left, _FLIP[op]
        if not (isinstance(left, ex.Col) and isinstance(right, ex.Lit)):
            return
        value = right.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        out.append((left.name, op, float(value)))

    walk(predicate)
    return out


def _range_may_satisfy(op: str, lo: float, hi: float, value: float) -> bool:
    if op == "=":
        return lo <= value <= hi
    if op == "<":
        return lo < value
    if op == "<=":
        return lo <= value
    if op == ">":
        return hi > value
    return hi >= value  # ">="


def _chunk_may_match(
    start: int,
    stop: int,
    conjuncts: list[tuple[str, str, float]],
    stats: Mapping[str, list],
) -> bool:
    """Whether any row of ``[start, stop)`` can satisfy every conjunct.

    A chunk is pruned when some conjunct is unsatisfiable in *all* the
    stats blocks it overlaps.  Blocks with ``None`` bounds (all-NaN or
    unindexed) conservatively may match, and a chunk overlapping no
    stats block at all is conservatively kept.
    """
    for col, op, value in conjuncts:
        blocks = stats.get(col)
        if not blocks:
            continue
        possible = overlapped = False
        for bstart, bstop, lo, hi in blocks:
            if bstop <= start or bstart >= stop:
                continue
            overlapped = True
            if lo is None or _range_may_satisfy(op, lo, hi, value):
                possible = True
                break
        if overlapped and not possible:
            return False
    return True


# -- the pipeline --------------------------------------------------------


@dataclass
class _Source:
    """A compiled chunk stream: task descriptors plus a pure mapper."""

    tasks: list
    fn: Callable


class ChunkedExecutor:
    """Partition-parallel plan execution over the columnar engine.

    ``rng_mode="compat"`` (default) consumes the supplied generator in
    the legacy executor's node order, making results bit-for-bit equal
    to the serial engine; ``"spawn"`` derives all sampling randomness
    from ``SeedSequence`` spawn keys instead (per-partition streams, no
    whole-table Bernoulli state).
    """

    def __init__(
        self,
        catalog: Mapping[str, Table],
        rng: np.random.Generator | None = None,
        *,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
        rng_mode: str = "compat",
        seed: int | None = None,
        scheduler: ChunkScheduler | None = None,
    ) -> None:
        if rng_mode not in _RNG_MODES:
            raise ExecutionError(
                f"unknown rng_mode {rng_mode!r}; choose from {_RNG_MODES}"
            )
        if chunk_size < 1:
            raise ExecutionError(f"chunk_size must be >= 1, got {chunk_size}")
        self.catalog = dict(catalog)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.workers = max(1, int(workers))
        self.chunk_size = int(chunk_size)
        self.rng_mode = rng_mode
        self.scheduler = (
            scheduler
            if scheduler is not None
            else ChunkScheduler(self.workers)
        )
        self._seed = seed
        self._entropy_cache: int | None = None
        self._draws: dict[int, object] = {}
        self._draw_nodes: list[p.PlanNode] = []

    @property
    def _entropy(self) -> int:
        """Spawn-mode root entropy, derived lazily.

        Lazy so that ``compat`` mode never touches the generator outside
        the legacy draw order (consuming it in ``__init__`` would shift
        every subsequent draw off the serial engine's stream).
        """
        if self._entropy_cache is None:
            if self._seed is not None:
                self._entropy_cache = int(self._seed)
            else:
                self._entropy_cache = int(
                    self.rng.integers(0, 2**63, dtype=np.int64)
                )
        return self._entropy_cache

    # -- public API -----------------------------------------------------

    def execute(self, plan: p.PlanNode) -> Table:
        """Materialize the plan (chunk concat; equals the serial engine)."""
        chunks = list(self.iter_chunks(plan))
        return concat_tables(chunks)

    def iter_chunks(
        self, plan: p.PlanNode, columns: frozenset[str] | None = None
    ) -> Iterator[Table]:
        """Stream the plan's output as chunk tables, in chunk order."""
        yield from self.map_chunks(plan, _identity, columns=columns)

    def map_chunks(
        self,
        plan: p.PlanNode,
        per_chunk: Callable[[Table], object],
        columns: frozenset[str] | None = None,
    ) -> Iterator[object]:
        """Apply ``per_chunk`` to every output chunk, inside the workers.

        This is the streaming-consumer entry point: ``per_chunk`` runs
        in the worker as part of the chunk task (e.g. folding the chunk
        into a compact moment contribution), and only its —
        typically tiny — results flow back to the driver, in order.
        """
        self._prepare_draws(plan)
        align = required_alignment(plan)
        source = self._compile(plan, columns, align)
        fn = source.fn
        tracer = get_tracer()

        if tracer is None:
            yield from self.scheduler.imap(
                _ComposedTask(fn, per_chunk), source.tasks
            )
            return

        # Traced path: workers measure their own chunk (never touching
        # the tracer), and the driver records the spans as results
        # stream back in chunk order — so span ids and tree shape are
        # identical at every worker count.
        parent = tracer.current_id()
        results = self.scheduler.imap(_TracedTask(fn, per_chunk), source.tasks)
        for index, (out, (t0, t1, rows, worker)) in enumerate(results):
            tracer.record_span(
                f"chunk[{index}]",
                "chunk",
                start_ns=t0,
                end_ns=t1,
                parent_id=parent,
                chunk=index,
                rows=rows,
                worker=worker,
            )
            yield out

    # -- sampling draws --------------------------------------------------

    def _prepare_draws(self, plan: p.PlanNode) -> None:
        """Fix every sampling node's randomness before execution.

        Draws are keyed by node identity and made in the legacy
        executor's evaluation order (post-order, left to right), so
        ``compat`` mode consumes the generator exactly as the serial
        engine would and produces the same sample.
        """
        self._draws.clear()
        self._draw_nodes.clear()
        node_index = 0
        for node in _post_order(plan):
            if not isinstance(node, p.TableSample):
                continue
            base = self._base_table(node.child.table_name)
            n_rows = base.n_rows
            if self.rng_mode == "compat":
                draw: object = _WholeDraw(node.method.draw(n_rows, self.rng))
            elif isinstance(node.method, Bernoulli):
                draw = _BlockBernoulliDraw(
                    node.method.p, self._entropy, node_index, n_rows
                )
            else:
                seq = np.random.SeedSequence(
                    entropy=self._entropy, spawn_key=(node_index,)
                )
                gen = np.random.Generator(np.random.PCG64(seq))
                draw = _WholeDraw(node.method.draw(n_rows, gen))
            self._draws[id(node)] = draw
            self._draw_nodes.append(node)  # keep ids alive
            node_index += 1

    def _base_table(self, name: str) -> Table:
        try:
            return self.catalog[name]
        except KeyError:
            raise PlanError(
                f"unknown table {name!r}; catalog has {sorted(self.catalog)}"
            ) from None

    # -- static schema ---------------------------------------------------

    def _output_columns(self, node: p.PlanNode) -> list[str]:
        """Data columns this node's output carries (static walk)."""
        if isinstance(node, p.Scan):
            return list(self._base_table(node.table_name).schema.names)
        if isinstance(node, p.Project):
            if node.outputs is None:
                return self._output_columns(node.child)
            return list(node.outputs)
        if isinstance(node, (p.Join, p.CrossProduct)):
            return self._output_columns(node.left) + self._output_columns(
                node.right
            )
        if isinstance(node, (p.Union, p.Intersect)):
            return self._output_columns(node.left)
        if isinstance(node, p.Aggregate):
            return [s.alias for s in node.specs]
        if isinstance(node, p.GroupAggregate):
            return list(node.keys) + [s.alias for s in node.specs]
        if isinstance(
            node, (p.Select, p.TableSample, p.LineageSample, p.GUSNode)
        ):
            return self._output_columns(node.child)
        raise PlanError(f"cannot infer columns of {type(node).__name__}")

    # -- compilation -----------------------------------------------------

    def _compile(
        self,
        node: p.PlanNode,
        needed: frozenset[str] | None,
        align: int,
    ) -> _Source:
        handler = self._COMPILERS.get(type(node))
        if handler is None:
            raise ExecutionError(f"cannot execute {type(node).__name__}")
        return handler(self, node, needed, align)

    def _scan_source(
        self,
        table_name: str,
        needed: frozenset[str] | None,
        align: int,
        wrap: Callable[[Table, int, int], Table],
    ) -> _Source:
        base = self._base_table(table_name)
        n_rows = base.n_rows
        keep = list(base.schema.names)
        schema = base.schema
        if needed is not None:
            keep = [c for c in keep if c in needed]
            # Pruned schema only — the scan holds the *base* table (so
            # mmap backing and descriptor pickling survive) and slices
            # the kept columns per chunk.
            schema = base.select_columns(keep).schema
        bounds = chunk_bounds(n_rows, self.chunk_size, align)
        return _Source(tasks=bounds, fn=_ScanFn(base, keep, schema, wrap))

    def _compile_scan(
        self, node: p.Scan, needed: frozenset[str] | None, align: int
    ) -> _Source:
        name = node.table_name
        return self._scan_source(name, needed, align, _LineageWrap(name))

    def _compile_table_sample(
        self, node: p.TableSample, needed: frozenset[str] | None, align: int
    ) -> _Source:
        name = node.child.table_name
        draw = self._draws[id(node)]
        return self._scan_source(name, needed, align, _SampleWrap(name, draw))

    def _compile_lineage_sample(
        self, node: p.LineageSample, needed: frozenset[str] | None, align: int
    ) -> _Source:
        if isinstance(node.child, p.Join):
            # Fuse the lineage filter into the join probe: the keep
            # decision is a pure hash of lineage ids, so it can run on
            # the matched (li, ri) index pairs before any data column
            # is gathered — rows the sample drops are never built.
            return self._compile_join(
                node.child, needed, align, sampler=node.sampler
            )
        child = self._compile(node.child, needed, align)
        return _Source(
            tasks=child.tasks, fn=_LineageSampleFn(child.fn, node.sampler)
        )

    def _scan_stats(self, node: p.PlanNode) -> Mapping[str, list] | None:
        """Block min/max stats of the base table a node scans, if any.

        Pruning below a TableSample is sound because draws are fixed
        per *global* row position in :meth:`_prepare_draws` (never per
        surviving chunk), so skipping a chunk whose rows the predicate
        would discard anyway changes no draw and no surviving row.
        """
        if isinstance(node, p.Scan):
            return self._base_table(node.table_name).block_stats
        if isinstance(node, p.TableSample):
            return self._base_table(node.child.table_name).block_stats
        return None

    def _compile_select(
        self, node: p.Select, needed: frozenset[str] | None, align: int
    ) -> _Source:
        child_needed = (
            None if needed is None else needed | node.predicate.columns_used()
        )
        child = self._compile(node.child, child_needed, align)
        tasks = child.tasks
        stats = self._scan_stats(node.child)
        if stats:
            conjuncts = _predicate_conjuncts(node.predicate)
            if conjuncts:
                tasks = [
                    bound
                    for bound in tasks
                    if _chunk_may_match(bound[0], bound[1], conjuncts, stats)
                ]
                if not tasks:
                    # Consumers need at least one (empty) chunk to
                    # carry the schema.
                    tasks = [(0, 0)]
        return _Source(tasks=tasks, fn=_SelectFn(child.fn, node.predicate))

    def _compile_project(
        self, node: p.Project, needed: frozenset[str] | None, align: int
    ) -> _Source:
        if node.outputs is None:
            return self._compile(node.child, needed, align)
        outputs = dict(node.outputs)
        if needed is not None:
            outputs = {n: e for n, e in outputs.items() if n in needed}
        child_needed = (
            None
            if needed is None
            else frozenset().union(
                *[e.columns_used() for e in outputs.values()]
            )
            if outputs
            else frozenset()
        )
        child = self._compile(node.child, child_needed, align)
        return _Source(tasks=child.tasks, fn=_ProjectFn(child.fn, outputs))

    def _compile_join(
        self,
        node: p.Join,
        needed: frozenset[str] | None,
        align: int,
        sampler=None,
    ) -> _Source:
        left_out = set(self._output_columns(node.left))
        right_out = set(self._output_columns(node.right))
        left_needed = (
            None
            if needed is None
            else frozenset(needed & left_out) | frozenset(node.left_keys)
        )
        right_needed = (
            None
            if needed is None
            else frozenset(needed & right_out) | frozenset(node.right_keys)
        )
        left_table = self._materialize(node.left, left_needed, align)
        right_src = self._compile(node.right, right_needed, align)
        left_key_cols = [left_table.column(k) for k in node.left_keys]
        single_numeric = (
            len(node.left_keys) == 1
            and left_key_cols[0].dtype.kind in "iufb"
        )
        n_buckets = min(self.workers, 16)
        right_keys = tuple(node.right_keys)

        if single_numeric:
            # Streaming probe: raw keys compare directly across sides.
            build = _HashJoinBuild(left_key_cols[0], n_buckets)
            return _Source(
                tasks=right_src.tasks,
                fn=_StreamJoinFn(
                    build, right_src.fn, right_keys[0], left_table, sampler
                ),
            )

        # Object or multi-column keys: buffer the (pruned) probe chunks
        # and factorize both sides jointly to dense int64 codes, then
        # probe per chunk on the codes.  Inputs are bounded by the base
        # tables; the join output still streams.
        rights = self.scheduler.map(right_src.fn, right_src.tasks)
        right_cols = [
            np.concatenate([rt.column(k) for rt in rights])
            for k in right_keys
        ]
        lcodes, rcodes = join_codes(left_key_cols, right_cols)
        build = _HashJoinBuild(lcodes, n_buckets)
        offsets = np.cumsum([0] + [rt.n_rows for rt in rights])
        return _Source(
            tasks=list(range(len(rights))),
            fn=_BufferedJoinFn(
                build, rights, rcodes, offsets, left_table, sampler
            ),
        )

    def _compile_cross(
        self, node: p.CrossProduct, needed: frozenset[str] | None, align: int
    ) -> _Source:
        left_out = set(self._output_columns(node.left))
        right_out = set(self._output_columns(node.right))
        left_needed = (
            None if needed is None else frozenset(needed & left_out)
        )
        right_needed = (
            None if needed is None else frozenset(needed & right_out)
        )
        # Stream the *left* side so chunk concatenation reproduces the
        # serial executor's left-major output order.
        right_table = self._materialize(node.right, right_needed, align)
        left_src = self._compile(node.left, left_needed, align)
        return _Source(
            tasks=left_src.tasks, fn=_CrossFn(left_src.fn, right_table)
        )

    def _compile_materialized(
        self, node: p.PlanNode, needed: frozenset[str] | None, align: int
    ) -> _Source:
        """Pipeline breakers: evaluate whole, then re-chunk the result."""
        table = self._evaluate_breaker(node, needed, align)
        bounds = chunk_bounds(table.n_rows, self.chunk_size, 1)
        return _Source(tasks=bounds, fn=_SliceFn(table))

    def _evaluate_breaker(
        self, node: p.PlanNode, needed: frozenset[str] | None, align: int
    ) -> Table:
        if isinstance(node, p.Union):
            return union_tables(
                self._materialize(node.left, needed, align),
                self._materialize(node.right, needed, align),
            )
        if isinstance(node, p.Intersect):
            return intersect_tables(
                self._materialize(node.left, needed, align),
                self._materialize(node.right, needed, align),
            )
        if isinstance(node, p.Aggregate):
            child_needed = _spec_columns(node.specs)
            return evaluate_aggregates(
                self._materialize(node.child, child_needed, align), node.specs
            )
        if isinstance(node, p.GroupAggregate):
            child_needed = _spec_columns(node.specs) | frozenset(node.keys)
            return evaluate_group_aggregates(
                self._materialize(node.child, child_needed, align),
                node.keys,
                node.specs,
                node.having,
            )
        raise ExecutionError(
            f"cannot materialize {type(node).__name__}"
        )  # pragma: no cover - guarded by _COMPILERS

    def _compile_gus(
        self, node: p.GUSNode, needed: frozenset[str] | None, align: int
    ) -> _Source:
        raise ExecutionError(
            "GUS is a quasi-operator used for analysis only; executable "
            "plans carry TableSample/LineageSample nodes instead"
        )

    def _materialize(
        self, node: p.PlanNode, needed: frozenset[str] | None, align: int
    ) -> Table:
        source = self._compile(node, needed, align)
        return concat_tables(self.scheduler.map(source.fn, source.tasks))

    _COMPILERS = {
        p.Scan: _compile_scan,
        p.TableSample: _compile_table_sample,
        p.LineageSample: _compile_lineage_sample,
        p.Select: _compile_select,
        p.Project: _compile_project,
        p.Join: _compile_join,
        p.CrossProduct: _compile_cross,
        p.Union: _compile_materialized,
        p.Intersect: _compile_materialized,
        p.Aggregate: _compile_materialized,
        p.GroupAggregate: _compile_materialized,
        p.GUSNode: _compile_gus,
    }


def _spec_columns(specs) -> frozenset[str]:
    cols: frozenset[str] = frozenset()
    for spec in specs:
        if spec.expr is not None:
            cols |= spec.expr.columns_used()
    return cols


def _post_order(node: p.PlanNode):
    """Children before parents, left to right — the legacy executor's
    generator-consumption order."""
    for child in node.children:
        yield from _post_order(child)
    yield node
