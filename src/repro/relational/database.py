"""The user-facing database façade.

Binds together the catalog, executor, SBox estimator, and SQL frontend:

* :meth:`Database.execute` runs any plan (sampling included);
* :meth:`Database.execute_exact` strips sampling for ground truth;
* :meth:`Database.estimate` runs an aggregate plan through the SBox;
* :meth:`Database.sql` parses and runs SQL text;
* :meth:`Database.explain` shows the executable plan alongside its
  SOA-equivalent single-GUS analysis form (the paper's Figure 2/4/5
  transformations, rendered).
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SchemaError
from repro.relational.plan import (
    Aggregate,
    GroupAggregate,
    PlanNode,
    strip_sampling,
)
from repro.relational.table import Table
from repro.versions.snapshots import (
    VERSION_SEP,
    SnapshotRegistry,
    versioned_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rewrite import RewriteResult
    from repro.core.sbox import GroupedQueryResult, QueryResult, SBox
    from repro.core.subsample import SubsampleSpec
    from repro.obs.report import ExplainAnalyzeReport
    from repro.optimizer import (
        CostModel,
        ErrorBudget,
        OptimizedResult,
        OptimizerReport,
        SamplingPlanOptimizer,
    )
    from repro.store import SynopsisCatalog


class Database:
    """An in-memory catalog of named tables plus the estimation stack.

    ``workers`` selects the execution engine for queries: ``None``
    (default) defers to the ``REPRO_WORKERS`` environment variable and,
    failing that, the legacy one-table-at-a-time serial executor; any
    value >= 1 routes queries through the partition-parallel chunked
    pipeline with that many workers.  Chunked results are bit-for-bit
    identical for every worker count, and executed tables reproduce the
    serial engine exactly.  Chunked *estimates* equal the serial
    estimator's exactly whenever sample rows carry distinct lineage
    keys (tuple-level sampling — every SQL-reachable plan); when a
    lineage key is shared by many rows (block sampling, join fanout)
    the merged moment state sums per key first, so point estimates can
    differ from the serial path in the last float ulp (variances and
    moments stay exact).
    """

    def __init__(
        self,
        seed: int | None = None,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        catalog: "SynopsisCatalog | bool | None" = None,
    ) -> None:
        self.tables: dict[str, Table] = {}
        self.snapshots = SnapshotRegistry()
        self._rng = np.random.default_rng(seed)
        self._cost_model: "CostModel | None" = None
        self.workers = workers
        self.chunk_size = chunk_size
        self.synopses: "SynopsisCatalog | None" = None
        # Identity tests, not truthiness: an empty SynopsisCatalog has
        # len() == 0 and must still attach.
        if catalog is not None and catalog is not False:
            self.attach_catalog(None if catalog is True else catalog)

    def attach_catalog(
        self, catalog: "SynopsisCatalog | None" = None
    ) -> "SynopsisCatalog":
        """Enable sample-synopsis reuse for this database's queries.

        Every estimated query is then served from the catalog whenever
        a stored sample subsumes its sampling plan (exact repeat,
        predicate pushdown, or residual Bernoulli thinning), and
        populates it otherwise.  Table mutations invalidate the
        affected synopses.  Returns the attached catalog.

        Trade-off: populating the catalog materializes the sampled
        child result in full (even on the chunked engine), because
        that is what gets stored — first-seen queries pay memory
        proportional to their sample for later reuse (bounded by the
        catalog's ``max_entry_bytes``: larger samples are answered but
        not stored).  Streaming callers that must never materialize
        (``keep_sample=False``) bypass the catalog entirely.
        """
        if catalog is None:
            from repro.store import SynopsisCatalog

            catalog = SynopsisCatalog()
        self.synopses = catalog
        return catalog

    def _invalidate_synopses(self, name: str) -> None:
        if self.synopses is not None:
            self.synopses.invalidate(name)

    def _resolve_workers(self, workers: int | None) -> int | None:
        """Per-call override → database default → ``REPRO_WORKERS``."""
        from repro.parallel import resolve_workers

        if workers is not None:
            return resolve_workers(workers)
        return resolve_workers(self.workers)

    # -- catalog -----------------------------------------------------------

    @classmethod
    def from_tables(
        cls,
        tables: Mapping[str, Table],
        seed: int | None = None,
        *,
        catalog: "SynopsisCatalog | bool | None" = None,
    ) -> "Database":
        db = cls(seed=seed, catalog=catalog)
        for name, table in tables.items():
            db.register(name, table)
        return db

    def register(self, name: str, table: Table) -> Table:
        """Register an existing :class:`Table` under ``name``."""
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        if VERSION_SEP in name:
            raise SchemaError(
                f"table name {name!r} uses the reserved snapshot "
                f"namespace ({VERSION_SEP!r}); snapshots are taken with "
                "Database.snapshot()"
            )
        named = table.rename(name)
        self.tables[name] = named
        self._cost_model = None  # statistics are stale
        self._invalidate_synopses(name)
        return named

    def create_table(self, name: str, columns: Mapping[str, Any]) -> Table:
        """Create a table from column arrays."""
        return self.register(name, Table(name, columns))

    def _swap_table(self, name: str, table: Table) -> Table:
        """Swap a registered table's contents in place (no snapshot).

        Invalidates every synopsis drawn from the old contents — the
        stored samples no longer describe the live table.  Snapshot
        synopses (registered under versioned names) are untouched.
        """
        if name not in self.tables:
            raise SchemaError(
                f"no table {name!r} to replace; available: "
                f"{sorted(self.tables)}"
            )
        named = table.rename(name)
        self.tables[name] = named
        self._cost_model = None
        self._invalidate_synopses(name)
        return named

    def replace_table(self, name: str, table: Table) -> Table:
        """Deprecated in-place mutation; use :meth:`update_table`.

        The versioned API re-expresses mutation as snapshot-then-swap so
        the outgoing contents stay queryable (``AT VERSION n``) and their
        synopses stay servable.  This shim keeps the old discard-history
        behavior for existing callers and warns once per call site.
        """
        warnings.warn(
            "Database.replace_table is deprecated: use "
            "Database.update_table (snapshot-then-mutate) to keep the "
            "outgoing version queryable, or create/drop the table "
            "explicitly to discard it",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._swap_table(name, table)

    def snapshot(self, name: str) -> int:
        """Freeze the current contents of ``name`` as a new version.

        Copy-on-write: the snapshot shares every column array — and,
        for mmap tables, the colstore column files on disk — with the
        live table, so this is O(1) in data volume.  Returns the new
        version number (counting up from 1 per base table).  The
        snapshot is immediately queryable via ``db.table(name,
        version=v)`` and ``FROM name AT VERSION v``, and its synopses
        are keyed separately from the live table's, so later mutations
        never invalidate them.
        """
        table = self.table(name)
        version = self.snapshots.allocate(name)
        internal = versioned_name(name, version)
        self.tables[internal] = table.rename(internal).with_version(version)
        self._cost_model = None
        return version

    def update_table(self, name: str, table: Table) -> Table:
        """Snapshot-then-mutate: the versioned replacement for
        :meth:`replace_table`.

        The outgoing contents are frozen as a new snapshot version
        first, then ``table`` becomes the live contents.  Live-table
        synopses are invalidated (the samples no longer describe the
        live data) but the new snapshot keeps serving time-travel and
        difference queries from the catalog.  For coordinated
        difference estimates to stay keyed correctly, mutations should
        be update/append-shaped (row positions stable; new rows at the
        end) — :meth:`Table.with_columns` builds such updates sharing
        every untouched column.
        """
        self.snapshot(name)
        return self._swap_table(name, table)

    def versions_of(self, name: str) -> tuple[int, ...]:
        """The snapshot versions of ``name``, ascending."""
        return self.snapshots.versions_of(name)

    def persist(self, name: str, path: str, *, block_rows: int = 1 << 20) -> Table:
        """Write a registered table to columnar storage and go mmap.

        The table's columns are streamed to ``path`` in the repro
        columnar format and the catalog entry is swapped for the
        memory-mapped reader — subsequent queries against ``name`` read
        file-backed pages instead of process heap.  Like
        :meth:`replace_table`, the swap invalidates synopses and the
        cost model (the *contents* are bit-identical, but synopsis
        entries hold references into the old arrays that would pin the
        heap copy alive).
        """
        table = self.table(name)
        mapped = table.persist(path, block_rows=block_rows)
        return self._swap_table(name, mapped)

    def attach(self, name: str, path: str) -> Table:
        """Register a persisted columnar directory as a live table.

        Columns are memory-mapped, not loaded: attaching a table far
        larger than RAM is O(footer), and scans fault in only the pages
        they touch.
        """
        return self.register(name, Table.from_mmap(path, name))

    def drop_table(self, name: str) -> None:
        """Drop a table and every snapshot version taken of it."""
        try:
            del self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r} to drop") from None
        for version in self.snapshots.drop_base(name):
            internal = versioned_name(name, version)
            self.tables.pop(internal, None)
            self._invalidate_synopses(internal)
        self._cost_model = None
        self._invalidate_synopses(name)

    def table(self, name: str, version: int | None = None) -> Table:
        """Look up a table, optionally at a frozen snapshot version."""
        if version is not None:
            return self.table(self.resolve_version(name, version))
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r}; available: {sorted(self.tables)}"
            ) from None

    def resolve_version(self, name: str, version: int | None) -> str:
        """The catalog name of ``name`` at ``version`` (live if None)."""
        if name not in self.tables:
            raise SchemaError(
                f"no table {name!r}; available: {sorted(self.tables)}"
            )
        if version is None:
            return name
        if not self.snapshots.has(name, version):
            raise SchemaError(
                f"table {name!r} has no snapshot version {version}; "
                f"available versions: {list(self.snapshots.versions_of(name))}"
            )
        return versioned_name(name, version)

    def sizes(self) -> dict[str, int]:
        return {name: t.n_rows for name, t in self.tables.items()}

    # -- execution -----------------------------------------------------------

    def rng(self, seed: int | None = None) -> np.random.Generator:
        """A generator: the database's own stream, or a seeded fork."""
        return self._rng if seed is None else np.random.default_rng(seed)

    def execute(
        self,
        plan: PlanNode,
        seed: int | None = None,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
    ) -> Table:
        """Execute a plan, drawing any samples from the RNG.

        With workers resolved (argument, database default, or
        ``REPRO_WORKERS``) the chunked pipeline runs the plan; its
        output is bit-for-bit identical to the serial executor's.
        """
        resolved = self._resolve_workers(workers)
        if resolved is not None:
            return self._chunked_executor(
                resolved, chunk_size, seed
            ).execute(plan)
        from repro.relational.executor import Executor

        return Executor(self.tables, self.rng(seed)).execute(plan)

    def _chunked_executor(
        self, workers: int, chunk_size: int | None, seed: int | None
    ):
        from repro.relational.partition import DEFAULT_CHUNK_ROWS
        from repro.relational.pipeline import ChunkedExecutor

        if chunk_size is None:
            chunk_size = (
                self.chunk_size
                if self.chunk_size is not None
                else DEFAULT_CHUNK_ROWS
            )
        return ChunkedExecutor(
            self.tables,
            self.rng(seed),
            workers=workers,
            chunk_size=chunk_size,
        )

    def execute_exact(self, plan: PlanNode) -> Table:
        """Execute with all sampling removed (ground truth)."""
        from repro.relational.executor import Executor

        return Executor(self.tables, self.rng(0)).execute(
            strip_sampling(plan)
        )

    # -- estimation ------------------------------------------------------------

    def sbox(self) -> "SBox":
        from repro.core.sbox import SBox

        return SBox(self.tables, self._rng, synopses=self.synopses)

    def estimate(
        self,
        plan: "Aggregate | GroupAggregate",
        *,
        seed: int | None = None,
        subsample: "SubsampleSpec | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        keep_sample: bool = True,
    ) -> "QueryResult | GroupedQueryResult":
        """Run an (optionally grouped) aggregate plan through the SBox.

        When workers resolve (argument, database default, or
        ``REPRO_WORKERS``) the SBox folds each partition's sample
        directly into mergeable moment sketches — the full joined
        sample is never materialized (``keep_sample=False`` skips even
        the pruned copy kept for ``result.sample``).
        """
        resolved = self._resolve_workers(workers)
        if chunk_size is None:
            chunk_size = self.chunk_size
        return self.sbox().run(
            plan,
            subsample=subsample,
            rng=self.rng(seed),
            workers=resolved,
            chunk_size=chunk_size,
            keep_sample=keep_sample,
        )

    def analyze(self, plan: PlanNode) -> "RewriteResult":
        """The SOA-equivalent single-GUS form of (the input of) a plan."""
        target = (
            plan.child
            if isinstance(plan, (Aggregate, GroupAggregate))
            else plan
        )
        return self.sbox().analyze(target)

    def explain(self, plan: PlanNode) -> str:
        """Executable plan + its SOA-equivalent analysis plan."""
        target = (
            plan.child
            if isinstance(plan, (Aggregate, GroupAggregate))
            else plan
        )
        rewrite = self.sbox().analyze(target)
        return (
            "== executable plan ==\n"
            + plan.pretty()
            + "\n== SOA-equivalent analysis plan ==\n"
            + rewrite.analysis_plan.pretty()
            + "\n== top GUS ==\n"
            + repr(rewrite.params)
        )

    # -- optimization ----------------------------------------------------------

    def cost_model(self) -> "CostModel":
        """The micro-probe-calibrated cost model (cached per catalog)."""
        from repro.optimizer import CostModel

        if self._cost_model is None:
            self._cost_model = CostModel.calibrate(self.tables)
        return self._cost_model

    def optimizer(self, **kwargs) -> "SamplingPlanOptimizer":
        """A sampling-plan optimizer sharing this database's cost model."""
        from repro.optimizer import SamplingPlanOptimizer

        kwargs.setdefault("cost_model", self.cost_model())
        return SamplingPlanOptimizer(self, **kwargs)

    def optimize(
        self,
        plan: Aggregate,
        budget: "ErrorBudget",
        *,
        seed: int | None = None,
    ) -> "OptimizedResult":
        """Run the full choose-execute-escalate loop for a budget."""
        return self.optimizer().optimize(plan, budget, seed=seed)

    # -- SQL -----------------------------------------------------------------

    def plan_sql(self, text: str) -> PlanNode:
        """Parse SQL text into a logical plan (no execution)."""
        from repro.sql.parser import parse
        from repro.sql.planner import plan_query

        return plan_query(parse(text), self)

    def sql(
        self,
        text: str,
        *,
        seed: int | None = None,
        subsample: "SubsampleSpec | None" = None,
        workers: int | None = None,
        chunk_size: int | None = None,
    ) -> (
        "QueryResult | GroupedQueryResult | Table | OptimizedResult"
        " | OptimizerReport | ExplainAnalyzeReport"
    ):
        """Parse and run SQL.

        Aggregate queries return a :class:`QueryResult`; GROUP BY
        aggregate queries a
        :class:`~repro.core.sbox.GroupedQueryResult` with per-group
        estimates and intervals; non-aggregate queries the result
        :class:`Table`.  A ``WITHIN ... % CONFIDENCE ...`` budget
        routes through the sampling-plan optimizer and returns an
        :class:`~repro.optimizer.OptimizedResult`; an ``EXPLAIN
        SAMPLING`` prefix skips execution of the final plan and returns
        the ranked :class:`~repro.optimizer.OptimizerReport`.
        """
        from repro.sql.parser import parse
        from repro.sql.planner import plan_query

        query = parse(text)
        plan = plan_query(query, self)
        if query.explain_sampling or query.budget is not None:
            from repro.errors import SQLError
            from repro.optimizer import ErrorBudget

            if subsample is not None:
                raise SQLError(
                    "subsample applies to the plain estimate path; the "
                    "optimizer controls its own sampling design (drop "
                    "the WITHIN/EXPLAIN SAMPLING clause or the "
                    "subsample spec)"
                )
            assert isinstance(plan, Aggregate)
            clause = query.budget
            budget = (
                ErrorBudget.from_percent(clause.percent, clause.level)
                if clause is not None
                else ErrorBudget.from_percent(5.0)
            )
            optimizer = self.optimizer()
            if query.explain_sampling:
                return optimizer.report(plan, budget, seed=seed)
            return optimizer.optimize(plan, budget, seed=seed)
        from repro.versions.plan import VersionDiff

        if query.explain_analyze:
            from dataclasses import replace

            from repro.obs.report import ExplainAnalyzeReport
            from repro.obs.trace import start_trace

            with start_trace("explain analyze") as tracer:
                if isinstance(plan, VersionDiff):
                    result = self._estimate_version_diff(
                        plan, seed=seed, workers=workers, chunk_size=chunk_size
                    )
                elif isinstance(plan, (Aggregate, GroupAggregate)):
                    result = self.estimate(
                        plan,
                        seed=seed,
                        subsample=subsample,
                        workers=workers,
                        chunk_size=chunk_size,
                    )
                else:
                    result = self.execute(
                        plan, seed=seed, workers=workers, chunk_size=chunk_size
                    )
            trace = tracer.finish_trace()
            if hasattr(result, "trace"):
                result = replace(result, trace=trace)
            return ExplainAnalyzeReport(result=result, trace=trace)
        if isinstance(plan, VersionDiff):
            if subsample is not None:
                from repro.errors import SQLError

                raise SQLError(
                    "subsampling applies to the single-expression "
                    "estimate path; version-difference estimates carry "
                    "their own closed-form variance (drop the subsample "
                    "spec)"
                )
            return self._estimate_version_diff(
                plan, seed=seed, workers=workers, chunk_size=chunk_size
            )
        if isinstance(plan, (Aggregate, GroupAggregate)):
            return self.estimate(
                plan,
                seed=seed,
                subsample=subsample,
                workers=workers,
                chunk_size=chunk_size,
            )
        return self.execute(
            plan, seed=seed, workers=workers, chunk_size=chunk_size
        )

    def _estimate_version_diff(
        self,
        plan: "PlanNode",
        *,
        seed: int | None,
        workers: int | None,
        chunk_size: int | None,
    ):
        from repro.versions.engine import estimate_version_diff

        return estimate_version_diff(
            self, plan, seed=seed, workers=workers, chunk_size=chunk_size
        )

    def sql_exact(self, text: str) -> Table:
        """Ground truth for a SQL query: strip sampling, run exactly."""
        from repro.versions.plan import VersionDiff

        plan = self.plan_sql(text)
        if isinstance(plan, VersionDiff):
            from repro.versions.engine import exact_version_diff

            return exact_version_diff(self, plan)
        return self.execute_exact(plan)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({t.n_rows})" for name, t in sorted(self.tables.items())
        )
        return f"Database({inner})"

