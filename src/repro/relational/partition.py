"""Row-range partitioning: the chunk layer under the pipeline executor.

A :class:`TableChunk` is a contiguous row range of a source stream —
zero-copy column views plus the global ``[start, stop)`` coordinates
that tie it back to the base table (sampling draws and lineage ids are
functions of the *global* row position, never the chunk-local one, so
any partitioning of the same rows yields the same sample).

:class:`PartitionedTable` splits one table into aligned chunks;
:func:`chunk_bounds` is the bare boundary computation shared with
streams that have no backing table.

Alignment matters for exactness, not just speed: block-level sampling
(``TABLESAMPLE SYSTEM``) assigns one lineage id to a whole block of
consecutive rows.  The partition-merge estimator folds each chunk into
a compacted per-lineage-key sum table; if a block straddled a chunk
boundary its partial sums would be added in a partition-dependent
order and the merged floats could wobble in the last ulp across
chunkings.  :func:`required_alignment` therefore walks the plan for
block sampling nodes and the partitioner rounds chunk boundaries up to
a multiple of every block size, so each lineage key is always wholly
inside one chunk and the merge is bit-for-bit independent of the
partitioning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.relational import plan as p
from repro.relational.table import Table

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "PartitionedTable",
    "TableChunk",
    "chunk_bounds",
    "required_alignment",
]

#: Default rows per chunk: large enough that per-chunk numpy dispatch
#: overhead is negligible, small enough that a chunk of a wide table
#: stays comfortably inside L2/L3-sized working sets.
DEFAULT_CHUNK_ROWS = 65_536

#: Ceiling on the block-size lcm the partitioner will honour; beyond it
#: chunks simply grow to one-block-per-chunk granularity.
_MAX_ALIGNMENT = 1 << 22


@dataclass(frozen=True)
class TableChunk:
    """One contiguous row range of a source stream."""

    table: Table
    start: int
    stop: int
    index: int

    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:
        return (
            f"TableChunk(#{self.index}, rows [{self.start}, {self.stop}))"
        )


def chunk_bounds(
    n_rows: int, chunk_size: int, align: int = 1
) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``[start, stop)`` ranges.

    Boundaries land on multiples of ``align`` (except the final stop).
    An empty input yields one empty range so a pipeline always carries
    at least one (schema-bearing) chunk.
    """
    chunk_size = max(1, int(chunk_size))
    align = max(1, int(align))
    step = max(chunk_size, align)
    if align > 1:
        step = (step // align) * align
    if n_rows <= 0:
        return [(0, 0)]
    return [
        (start, min(start + step, n_rows))
        for start in range(0, n_rows, step)
    ]


class PartitionedTable:
    """A table split into contiguous, zero-copy row-range chunks."""

    __slots__ = ("table", "bounds")

    def __init__(
        self, table: Table, bounds: list[tuple[int, int]]
    ) -> None:
        self.table = table
        self.bounds = list(bounds)

    @classmethod
    def partition(
        cls,
        table: Table,
        chunk_size: int = DEFAULT_CHUNK_ROWS,
        align: int = 1,
    ) -> "PartitionedTable":
        return cls(table, chunk_bounds(table.n_rows, chunk_size, align))

    @property
    def n_chunks(self) -> int:
        return len(self.bounds)

    def chunk(self, index: int) -> TableChunk:
        start, stop = self.bounds[index]
        return TableChunk(
            table=self.table.slice(start, stop),
            start=start,
            stop=stop,
            index=index,
        )

    def chunks(self):
        """Iterate the chunks in row order."""
        return (self.chunk(i) for i in range(self.n_chunks))

    def __len__(self) -> int:
        return self.n_chunks

    def __repr__(self) -> str:
        return (
            f"PartitionedTable({self.table.name or '<anon>'}, "
            f"rows={self.table.n_rows}, chunks={self.n_chunks})"
        )


def required_alignment(plan: p.PlanNode) -> int:
    """Chunk-boundary alignment the plan's sampling methods require.

    The lcm of every block sampler's rows-per-block (capped); 1 when
    all sampling is tuple-level.
    """
    align = 1
    for node in p.walk(plan):
        if isinstance(node, p.TableSample):
            block = getattr(node.method, "rows_per_block", None)
            if block:
                align = math.lcm(align, int(block))
                if align > _MAX_ALIGNMENT:
                    return _MAX_ALIGNMENT
    return align
