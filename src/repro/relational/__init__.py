"""A small columnar relational engine with lineage tracking.

This substrate provides what the paper assumes of its host database:
tables, selection/projection/join/set operators, SUM-like aggregates,
``TABLESAMPLE`` execution, and — crucially — *lineage*: every result row
carries the ids of the base-relation tuples it derives from, which is
the only extra information the SBox estimator needs (Section 6.2).

Storage is columnar over numpy arrays, so 10⁵–10⁶-row experiments run
in milliseconds without native code.
"""

from repro.relational.database import Database
from repro.relational.expressions import (
    BinOp,
    Col,
    Comparison,
    Expr,
    Lit,
    and_,
    col,
    lit,
    not_,
    or_,
)
from repro.relational.plan import (
    Aggregate,
    AggSpec,
    CrossProduct,
    GroupAggregate,
    GUSNode,
    Intersect,
    Join,
    LineageSample,
    PlanNode,
    Project,
    Scan,
    Select,
    TableSample,
    Union,
)
from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.table import Table

__all__ = [
    "Database",
    "Table",
    "Schema",
    "Column",
    "ColumnType",
    "Expr",
    "Col",
    "Lit",
    "BinOp",
    "Comparison",
    "col",
    "lit",
    "and_",
    "or_",
    "not_",
    "PlanNode",
    "Scan",
    "Select",
    "Project",
    "Join",
    "CrossProduct",
    "Union",
    "Intersect",
    "TableSample",
    "LineageSample",
    "GUSNode",
    "Aggregate",
    "GroupAggregate",
    "AggSpec",
]
