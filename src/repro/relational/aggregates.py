"""Plain (non-estimating) aggregate evaluation, grouped and ungrouped.

Used for ground-truth runs over the full data and for executing
``Aggregate`` / ``GroupAggregate`` nodes directly.  The *estimating*
path — scaling by ``1/a`` and attaching variances — lives in
:mod:`repro.core.sbox` (per-group via the vectorized grouped moments of
:mod:`repro.core.estimator`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.estimator import group_firsts, group_ids
from repro.errors import ExecutionError
from repro.relational.expressions import Expr
from repro.relational.plan import AggSpec
from repro.relational.table import Table


def aggregate_input_vector(table: Table, spec: AggSpec) -> np.ndarray:
    """The per-row ``f`` values of a SUM-like aggregate.

    SUM uses the expression values; COUNT uses the constant 1 — the
    paper's reduction of COUNT to SUM.  AVG has no single ``f`` (it is
    a ratio of two SUM-like aggregates): the estimating paths — SBox
    for both plain and GROUP BY queries — handle it with the delta
    method instead of calling this.
    """
    if spec.kind == "count":
        return np.ones(table.n_rows, dtype=np.float64)
    if spec.kind == "sum":
        assert spec.expr is not None
        return np.asarray(spec.expr.eval(table), dtype=np.float64)
    raise ExecutionError(
        f"{spec.kind.upper()} is not SUM-like and has no per-row f "
        "vector; the SBox estimates it as a delta-method ratio "
        "(grouped and ungrouped alike)"
    )


def evaluate_aggregates(table: Table, specs: Sequence[AggSpec]) -> Table:
    """Evaluate aggregates exactly over ``table`` (no estimation)."""
    outputs: dict[str, np.ndarray] = {}
    for spec in specs:
        if spec.kind == "avg":
            assert spec.expr is not None
            values = np.asarray(spec.expr.eval(table), dtype=np.float64)
            result = float(values.mean()) if table.n_rows else float("nan")
        else:
            result = float(aggregate_input_vector(table, spec).sum())
        outputs[spec.alias] = np.array([result], dtype=np.float64)
    return Table(None, outputs)


def evaluate_group_aggregates(
    table: Table,
    keys: Sequence[str],
    specs: Sequence[AggSpec],
    having: Expr | None = None,
) -> Table:
    """Evaluate grouped aggregates exactly (the ground-truth path).

    One :func:`~repro.core.estimator.group_ids` pass assigns dense
    group ids; every aggregate is then a ``bincount`` over them.  The
    output carries one row per group — key columns first (one
    representative value each), aggregate columns after — filtered by
    ``having`` over that output schema.
    """
    key_cols = [table.column(k) for k in keys]
    gids, n_groups = group_ids(key_cols, table.n_rows)
    first = group_firsts(gids, n_groups, table.n_rows)
    outputs: dict[str, np.ndarray] = {
        k: col[first] for k, col in zip(keys, key_cols)
    }
    counts = np.bincount(gids, minlength=n_groups)
    for spec in specs:
        if spec.kind == "count":
            outputs[spec.alias] = counts.astype(np.float64)
            continue
        assert spec.expr is not None
        values = np.asarray(spec.expr.eval(table), dtype=np.float64)
        sums = np.bincount(gids, weights=values, minlength=n_groups)
        if spec.kind == "sum":
            outputs[spec.alias] = sums
        else:  # avg; counts > 0 for every realized group
            outputs[spec.alias] = sums / counts
    result = Table(None, outputs)
    if having is not None:
        result = result.filter(np.asarray(having.eval(result), dtype=bool))
    return result
