"""Plain (non-estimating) aggregate evaluation.

Used for ground-truth runs over the full data and for executing
``Aggregate`` nodes directly.  The *estimating* path — scaling by
``1/a`` and attaching variances — lives in :mod:`repro.core.sbox`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.relational.plan import AggSpec
from repro.relational.table import Table


def aggregate_input_vector(table: Table, spec: AggSpec) -> np.ndarray:
    """The per-row ``f`` values of a SUM-like aggregate.

    SUM uses the expression values; COUNT uses the constant 1 — the
    paper's reduction of COUNT to SUM.  AVG has no single ``f`` (it is
    a ratio of two SUM-like aggregates) and is rejected here.
    """
    if spec.kind == "count":
        return np.ones(table.n_rows, dtype=np.float64)
    if spec.kind == "sum":
        assert spec.expr is not None
        return np.asarray(spec.expr.eval(table), dtype=np.float64)
    raise ExecutionError(
        f"{spec.kind.upper()} is not SUM-like; handled by the delta method"
    )


def evaluate_aggregates(table: Table, specs: Sequence[AggSpec]) -> Table:
    """Evaluate aggregates exactly over ``table`` (no estimation)."""
    outputs: dict[str, np.ndarray] = {}
    for spec in specs:
        if spec.kind == "avg":
            assert spec.expr is not None
            values = np.asarray(spec.expr.eval(table), dtype=np.float64)
            result = float(values.mean()) if table.n_rows else float("nan")
        else:
            result = float(aggregate_input_vector(table, spec).sum())
        outputs[spec.alias] = np.array([result], dtype=np.float64)
    return Table(None, outputs)
