"""CSV import/export and columnar persistence for tables.

Deliberately small: comma-separated, header row required, type
inference over int → float → string.  Enough to load external data into
the engine and to export query samples for inspection — not a general
CSV toolkit.  :func:`ingest_csv` streams a (possibly multi-GB) CSV into
the memory-mapped columnar layout in blocks, so ingest memory stays
O(block) rather than O(file); :func:`write_columnar` /
:func:`read_columnar` are the table-level entry points to that layout.
"""

from __future__ import annotations

import csv
import io
import pathlib

import numpy as np

from repro.colstore.format import ColumnarWriter
from repro.errors import SchemaError
from repro.relational.table import Table

#: Public alias matching the format's writer class.
ColumnWriter = ColumnarWriter


def _infer_column(values: list[str]) -> np.ndarray:
    """int64 if every value parses as int, else float64, else object.

    Conversion is bulk ``astype`` over an object array (numpy applies
    ``int``/``float`` element-wise in C) rather than a Python-level
    list comprehension per dtype attempt — same int → float → string
    lattice, an order of magnitude less interpreter overhead on wide
    ingests.
    """
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    try:
        return arr.astype(np.int64)
    except (ValueError, TypeError, OverflowError):
        pass
    try:
        return arr.astype(np.float64)
    except (ValueError, TypeError):
        return arr


def read_csv(source, name: str | None = None) -> Table:
    """Load a table from a path or file-like object.

    The first row is the header; column types are inferred per column.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as handle:
            return read_csv(handle, name=name or pathlib.Path(source).stem)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header row)") from None
    if not header or any(not h.strip() for h in header):
        raise SchemaError(f"invalid CSV header {header!r}")
    header = [h.strip() for h in header]
    rows = list(reader)
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row {i + 2} has {len(row)} fields, "
                f"expected {len(header)}"
            )
    columns = {
        column: _infer_column([row[j] for row in rows])
        for j, column in enumerate(header)
    }
    if not rows:
        columns = {column: np.empty(0, dtype=np.float64) for column in header}
    return Table(name, columns)


def write_csv(table: Table, destination) -> None:
    """Write a table (data columns only) to a path or file-like object."""
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", newline="") as handle:
            write_csv(table, handle)
            return
    writer = csv.writer(destination)
    names = table.schema.names
    writer.writerow(names)
    for row in table.to_rows():
        writer.writerow(row)


def read_csv_text(text: str, name: str | None = None) -> Table:
    """Convenience: load from a CSV string (used heavily in tests)."""
    return read_csv(io.StringIO(text), name=name)


def to_csv_text(table: Table) -> str:
    """Convenience: render a table as a CSV string."""
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()


# -- columnar persistence --------------------------------------------------

#: Default rows per ingest/persist block (one stats block each).
INGEST_BLOCK_ROWS = 1 << 16

#: Type-lattice ranks for streaming inference: int < float < string.
_KIND_RANK = {"i": 0, "f": 1, "O": 2}
_RANK_DTYPE = {0: np.int64, 1: np.float64}


def write_columnar(
    table: Table, path, *, block_rows: int = INGEST_BLOCK_ROWS
) -> pathlib.Path:
    """Write a table to the on-disk columnar layout; returns the dir."""
    with ColumnarWriter(
        path, table.name, list(table.columns), list(table.lineage)
    ) as writer:
        for start in range(0, max(table.n_rows, 1), block_rows):
            chunk = table.slice(start, start + block_rows)
            writer.append(chunk.columns, chunk.lineage)
    return pathlib.Path(path)


def read_columnar(path, name: str | None = None) -> Table:
    """Open a persisted columnar table as a zero-copy mmap-backed Table."""
    return Table.from_mmap(path, name)


def _csv_header(reader) -> list[str]:
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header row)") from None
    if not header or any(not h.strip() for h in header):
        raise SchemaError(f"invalid CSV header {header!r}")
    return [h.strip() for h in header]


def _iter_csv_blocks(reader, header: list[str], block_rows: int):
    """Yield (first_row_number, list-of-rows) blocks, checking arity."""
    block: list = []
    first = 2  # 1-based; row 1 is the header
    for i, row in enumerate(reader, start=2):
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row {i} has {len(row)} fields, expected {len(header)}"
            )
        block.append(row)
        if len(block) >= block_rows:
            yield first, block
            first = i + 1
            block = []
    if block:
        yield first, block


def _convert_block(values: list[str], rank: int) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    if rank in _RANK_DTYPE:
        return arr.astype(_RANK_DTYPE[rank])
    return arr


def ingest_csv(
    source,
    dest,
    name: str | None = None,
    *,
    block_rows: int = INGEST_BLOCK_ROWS,
) -> Table:
    """Stream a CSV file into the columnar layout; return the mmap table.

    Two streaming passes, each holding only ``block_rows`` rows of text
    in RAM: pass one joins each column's per-block inferred type over
    the int → float → string lattice; pass two converts blocks to the
    final dtypes and appends them through :class:`ColumnWriter`.  A
    multi-GB CSV therefore ingests with O(block) memory.
    """
    if not isinstance(source, (str, pathlib.Path)):
        raise SchemaError(
            "ingest_csv streams the file twice and needs a path, "
            f"got {type(source).__name__}"
        )
    source = pathlib.Path(source)
    name = name or source.stem

    with open(source, newline="") as handle:
        reader = csv.reader(handle)
        header = _csv_header(reader)
        ranks = [0] * len(header)
        for _, block in _iter_csv_blocks(reader, header, block_rows):
            for j in range(len(header)):
                inferred = _infer_column([row[j] for row in block])
                ranks[j] = max(ranks[j], _KIND_RANK[inferred.dtype.kind])

    with open(source, newline="") as handle:
        reader = csv.reader(handle)
        _csv_header(reader)
        with ColumnarWriter(dest, name, header) as writer:
            for _, block in _iter_csv_blocks(reader, header, block_rows):
                writer.append(
                    {
                        col: _convert_block(
                            [row[j] for row in block], ranks[j]
                        )
                        for j, col in enumerate(header)
                    }
                )
    return Table.from_mmap(dest, name)
