"""CSV import/export for tables.

Deliberately small: comma-separated, header row required, type
inference over int → float → string.  Enough to load external data into
the engine and to export query samples for inspection — not a general
CSV toolkit.
"""

from __future__ import annotations

import csv
import io
import pathlib

import numpy as np

from repro.errors import SchemaError
from repro.relational.table import Table


def _infer_column(values: list[str]) -> np.ndarray:
    """int64 if every value parses as int, else float64, else object."""
    try:
        return np.array([int(v) for v in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in values], dtype=np.float64)
    except ValueError:
        return np.array(values, dtype=object)


def read_csv(source, name: str | None = None) -> Table:
    """Load a table from a path or file-like object.

    The first row is the header; column types are inferred per column.
    """
    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as handle:
            return read_csv(handle, name=name or pathlib.Path(source).stem)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header row)") from None
    if not header or any(not h.strip() for h in header):
        raise SchemaError(f"invalid CSV header {header!r}")
    header = [h.strip() for h in header]
    rows = list(reader)
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row {i + 2} has {len(row)} fields, "
                f"expected {len(header)}"
            )
    columns = {
        column: _infer_column([row[j] for row in rows])
        for j, column in enumerate(header)
    }
    if not rows:
        columns = {column: np.empty(0, dtype=np.float64) for column in header}
    return Table(name, columns)


def write_csv(table: Table, destination) -> None:
    """Write a table (data columns only) to a path or file-like object."""
    if isinstance(destination, (str, pathlib.Path)):
        with open(destination, "w", newline="") as handle:
            write_csv(table, handle)
            return
    writer = csv.writer(destination)
    names = table.schema.names
    writer.writerow(names)
    for row in table.to_rows():
        writer.writerow(row)


def read_csv_text(text: str, name: str | None = None) -> Table:
    """Convenience: load from a CSV string (used heavily in tests)."""
    return read_csv(io.StringIO(text), name=name)


def to_csv_text(table: Table) -> str:
    """Convenience: render a table as a CSV string."""
    buffer = io.StringIO()
    write_csv(table, buffer)
    return buffer.getvalue()
