"""Logical query plans.

Plans are immutable trees of :class:`PlanNode`.  Two node families
matter to the reproduction:

* purely relational nodes (scan/select/project/join/cross/union/
  intersect/aggregate) — these both execute and appear in the
  SOA-equivalent analysis plan; and
* sampling nodes: :class:`TableSample` (a ``TABLESAMPLE`` clause over a
  base table), :class:`LineageSample` (Section 7's executable
  lineage-keyed multi-dimensional Bernoulli, placeable anywhere), and
  :class:`GUSNode` (the *quasi-operator*: analysis-only, produced by the
  rewriter, refused by the executor — the paper is explicit that general
  GUS operators need never be executable).

Every node knows its lineage schema (the set of base relations below
it) and exposes a structural :meth:`PlanNode.fingerprint` so the
rewriter can recognise "two samples of the same expression", the
precondition of the union/intersection rules.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.gus import GUSParams
from repro.errors import PlanError, SelfJoinError
from repro.relational.expressions import Expr
from repro.sampling.base import SamplingMethod
from repro.sampling.composed import BiDimensionalBernoulli


class PlanNode:
    """Base class of all plan nodes."""

    __slots__ = ()

    @property
    def children(self) -> tuple["PlanNode", ...]:
        raise NotImplementedError

    def lineage_schema(self) -> frozenset[str]:
        """Base relations contributing lineage below this node."""
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """Structural identity (used for the same-expression checks)."""
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """Multi-line plan rendering, one node per line."""
        pad = "  " * indent
        lines = [pad + self._label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self._label()


class Scan(PlanNode):
    """Read a base table from the catalog, attaching row-id lineage."""

    __slots__ = ("table_name",)

    def __init__(self, table_name: str) -> None:
        self.table_name = table_name

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def lineage_schema(self) -> frozenset[str]:
        return frozenset([self.table_name])

    def fingerprint(self) -> tuple:
        return ("scan", self.table_name)

    def _label(self) -> str:
        return f"Scan({self.table_name})"


class Select(PlanNode):
    """Filter rows by a boolean predicate."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema()

    def fingerprint(self) -> tuple:
        return ("select", self.predicate.key(), self.child.fingerprint())

    def _label(self) -> str:
        return f"Select({self.predicate!r})"


class Project(PlanNode):
    """Bag projection (no duplicate elimination); lineage is retained.

    ``outputs`` maps output column names to expressions; ``None`` keeps
    all input columns (useful for pure column pruning at the SQL layer).
    """

    __slots__ = ("child", "outputs")

    def __init__(
        self, child: PlanNode, outputs: dict[str, Expr] | None
    ) -> None:
        self.child = child
        self.outputs = dict(outputs) if outputs is not None else None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema()

    def fingerprint(self) -> tuple:
        out_key = (
            None
            if self.outputs is None
            else tuple(sorted((n, e.key()) for n, e in self.outputs.items()))
        )
        return ("project", out_key, self.child.fingerprint())

    def _label(self) -> str:
        names = "*" if self.outputs is None else ", ".join(self.outputs)
        return f"Project({names})"


class Join(PlanNode):
    """Equi-join on one or more column pairs.

    ``left_keys[i]`` joins against ``right_keys[i]``.  Residual
    (non-equality) predicates belong in a :class:`Select` above.
    """

    __slots__ = ("left", "right", "left_keys", "right_keys")

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("join needs equal, non-empty key lists")
        overlap = left.lineage_schema() & right.lineage_schema()
        if overlap:
            raise SelfJoinError(
                f"join inputs share base relations {sorted(overlap)}; "
                "self-joins are outside the GUS algebra"
            )
        self.left = left
        self.right = right
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def lineage_schema(self) -> frozenset[str]:
        return self.left.lineage_schema() | self.right.lineage_schema()

    def fingerprint(self) -> tuple:
        return (
            "join",
            self.left_keys,
            self.right_keys,
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def _label(self) -> str:
        conds = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"Join({conds})"


class CrossProduct(PlanNode):
    """Cartesian product of two inputs with disjoint lineage."""

    __slots__ = ("left", "right")

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        overlap = left.lineage_schema() & right.lineage_schema()
        if overlap:
            raise SelfJoinError(
                f"cross-product inputs share base relations {sorted(overlap)}"
            )
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def lineage_schema(self) -> frozenset[str]:
        return self.left.lineage_schema() | self.right.lineage_schema()

    def fingerprint(self) -> tuple:
        return ("cross", self.left.fingerprint(), self.right.fingerprint())


class Union(PlanNode):
    """Set union by lineage of two samples of the same expression.

    Proposition 7 (and its duplicate-elimination requirement, Section 9)
    applies to unions of samples *of the same relation*; the executor
    deduplicates rows that share full lineage.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        if left.lineage_schema() != right.lineage_schema():
            raise PlanError(
                "union requires identical lineage schemas "
                f"({sorted(left.lineage_schema())} vs "
                f"{sorted(right.lineage_schema())})"
            )
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def lineage_schema(self) -> frozenset[str]:
        return self.left.lineage_schema()

    def fingerprint(self) -> tuple:
        return ("union", self.left.fingerprint(), self.right.fingerprint())


class Intersect(PlanNode):
    """Set intersection by lineage (the paper's *compaction* view)."""

    __slots__ = ("left", "right")

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        if left.lineage_schema() != right.lineage_schema():
            raise PlanError(
                "intersect requires identical lineage schemas "
                f"({sorted(left.lineage_schema())} vs "
                f"{sorted(right.lineage_schema())})"
            )
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def lineage_schema(self) -> frozenset[str]:
        return self.left.lineage_schema()

    def fingerprint(self) -> tuple:
        return (
            "intersect",
            self.left.fingerprint(),
            self.right.fingerprint(),
        )


class TableSample(PlanNode):
    """A ``TABLESAMPLE`` clause: a sampling method over a base table.

    Restricted to sit directly above a :class:`Scan`, mirroring SQL
    (you sample *tables*, not intermediate results — intermediate
    sub-sampling is :class:`LineageSample`).
    """

    __slots__ = ("child", "method")

    def __init__(self, child: Scan, method: SamplingMethod) -> None:
        if not isinstance(child, Scan):
            raise PlanError(
                "TABLESAMPLE applies to base tables only; got "
                f"{type(child).__name__}"
            )
        self.child = child
        self.method = method

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema()

    def fingerprint(self) -> tuple:
        return (
            "tablesample",
            self.method.describe(),
            self.child.fingerprint(),
        )

    def _label(self) -> str:
        return f"TableSample({self.method.describe()})"


class LineageSample(PlanNode):
    """Section 7's executable multi-dimensional lineage Bernoulli.

    Can be placed above any node whose lineage schema covers the
    sampled dimensions; the keep decision is a pure hash of per-relation
    seeds and lineage ids, so it is a genuine GUS.
    """

    __slots__ = ("child", "sampler")

    def __init__(self, child: PlanNode, sampler: BiDimensionalBernoulli) -> None:
        missing = set(sampler.rates) - child.lineage_schema()
        if missing:
            raise PlanError(
                f"lineage sample dimensions {sorted(missing)} not in child "
                f"lineage schema {sorted(child.lineage_schema())}"
            )
        self.child = child
        self.sampler = sampler

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema()

    def fingerprint(self) -> tuple:
        return (
            "lineagesample",
            self.sampler.describe(),
            self.child.fingerprint(),
        )

    def _label(self) -> str:
        return f"LineageSample({self.sampler.describe()})"


class GUSNode(PlanNode):
    """The GUS *quasi-operator* — analysis only, never executed.

    Appears in SOA-equivalent plans produced by the rewriter; asking
    the executor to run one raises
    :class:`~repro.errors.ExecutionError`, matching the paper's point
    that no implementation of a general GUS operator is needed.
    """

    __slots__ = ("child", "params")

    def __init__(self, child: PlanNode, params: GUSParams) -> None:
        self.child = child
        self.params = params

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema() | self.params.schema

    def fingerprint(self) -> tuple:
        b_key = tuple(float(x) for x in self.params.b)
        return ("gus", self.params.a, b_key, self.child.fingerprint())

    def _label(self) -> str:
        return f"GUS(a={self.params.a:.6g}, schema={sorted(self.params.schema)})"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output column.

    ``kind`` is ``sum``, ``count`` or ``avg``; ``expr`` is the argument
    (``None`` for ``COUNT(*)``); ``quantile`` marks the paper's
    ``QUANTILE(agg, q)`` syntax — the output column then reports that
    quantile of the estimator rather than the point estimate.
    """

    kind: str
    expr: Expr | None
    alias: str
    quantile: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sum", "count", "avg"):
            raise PlanError(f"unsupported aggregate {self.kind!r}")
        if self.kind != "count" and self.expr is None:
            raise PlanError(f"{self.kind.upper()} needs an argument")
        if self.quantile is not None and not 0.0 < self.quantile < 1.0:
            raise PlanError(f"quantile {self.quantile} must be in (0, 1)")


class GroupAggregate(PlanNode):
    """Grouped aggregation: one output row per distinct key combination.

    ``keys`` are the GROUP BY column names; ``specs`` the aggregate
    outputs; ``having`` an optional predicate evaluated over the
    *output* schema (group keys plus aggregate aliases) that filters
    groups after aggregation.  On the estimating path HAVING is
    necessarily approximate — it sees estimated aggregate values.
    """

    __slots__ = ("child", "keys", "specs", "having")

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        specs: Sequence[AggSpec],
        having: Expr | None = None,
    ) -> None:
        if not keys:
            raise PlanError(
                "GroupAggregate needs at least one grouping key "
                "(ungrouped aggregation is the Aggregate node)"
            )
        if len(set(keys)) != len(keys):
            raise PlanError(f"duplicate GROUP BY keys in {list(keys)}")
        if not specs:
            raise PlanError("aggregate needs at least one AggSpec")
        aliases = [s.alias for s in specs]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate aggregate aliases in {aliases}")
        overlap = set(keys) & set(aliases)
        if overlap:
            raise PlanError(
                f"aggregate aliases {sorted(overlap)} collide with "
                "GROUP BY keys"
            )
        if having is not None:
            visible = set(keys) | set(aliases)
            unknown = having.columns_used() - visible
            if unknown:
                raise PlanError(
                    f"HAVING references {sorted(unknown)}, which are "
                    "neither GROUP BY keys nor aggregate aliases; "
                    f"grouped output exposes only {sorted(visible)}"
                )
        self.child = child
        self.keys = tuple(keys)
        self.specs = tuple(specs)
        self.having = having

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema()

    def fingerprint(self) -> tuple:
        spec_key = tuple(
            (s.kind, None if s.expr is None else s.expr.key(), s.alias, s.quantile)
            for s in self.specs
        )
        having_key = None if self.having is None else self.having.key()
        return (
            "group_aggregate",
            self.keys,
            spec_key,
            having_key,
            self.child.fingerprint(),
        )

    def _label(self) -> str:
        inner = ", ".join(
            f"{s.kind.upper()}({s.expr!r})" if s.expr is not None else "COUNT(*)"
            for s in self.specs
        )
        text = f"GroupAggregate(by=[{', '.join(self.keys)}], {inner})"
        if self.having is not None:
            text += f" HAVING {self.having!r}"
        return text


class Aggregate(PlanNode):
    """Terminal aggregation node over one or more :class:`AggSpec`."""

    __slots__ = ("child", "specs")

    def __init__(self, child: PlanNode, specs: Sequence[AggSpec]) -> None:
        if not specs:
            raise PlanError("aggregate needs at least one AggSpec")
        aliases = [s.alias for s in specs]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate aggregate aliases in {aliases}")
        self.child = child
        self.specs = tuple(specs)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def lineage_schema(self) -> frozenset[str]:
        return self.child.lineage_schema()

    def fingerprint(self) -> tuple:
        spec_key = tuple(
            (s.kind, None if s.expr is None else s.expr.key(), s.alias, s.quantile)
            for s in self.specs
        )
        return ("aggregate", spec_key, self.child.fingerprint())

    def _label(self) -> str:
        inner = ", ".join(
            f"{s.kind.upper()}({s.expr!r})" if s.expr is not None else "COUNT(*)"
            for s in self.specs
        )
        return f"Aggregate({inner})"


def left_deep_join_tree(
    order: Sequence[str],
    leaves: dict[str, PlanNode],
    joins: Sequence[tuple[str, str, str, str]],
) -> PlanNode:
    """Build a left-deep tree over ``leaves`` in the given relation order.

    ``joins`` holds equi-join conditions ``(rel_a, col_a, rel_b, col_b)``.
    At each step the next relation *connected* to the joined prefix is
    picked (preserving ``order`` among the connected ones); unconnected
    relations fall back to cross products.  Shared by the SQL planner
    and the sampling-plan optimizer's candidate enumerator, so the two
    always agree on what a join order means.
    """
    if not order:
        raise PlanError("join tree needs at least one relation")
    pending = list(joins)
    current = leaves[order[0]]
    joined = {order[0]}
    remaining = list(order[1:])
    while remaining:
        chosen_idx = None
        for idx, name in enumerate(remaining):
            if any(
                (a in joined and c == name) or (c in joined and a == name)
                for a, _, c, _ in pending
            ):
                chosen_idx = idx
                break
        if chosen_idx is None:
            name = remaining.pop(0)
            current = CrossProduct(current, leaves[name])
            joined.add(name)
            continue
        name = remaining.pop(chosen_idx)
        left_keys, right_keys = [], []
        still_pending = []
        for a, a_col, c, c_col in pending:
            if a in joined and c == name:
                left_keys.append(a_col)
                right_keys.append(c_col)
            elif c in joined and a == name:
                left_keys.append(c_col)
                right_keys.append(a_col)
            else:
                still_pending.append((a, a_col, c, c_col))
        pending = still_pending
        current = Join(current, leaves[name], left_keys, right_keys)
        joined.add(name)
    if pending:
        leftover = [f"{a}.{ac} = {c}.{cc}" for a, ac, c, cc in pending]
        raise PlanError(f"unusable join conditions: {leftover}")
    return current


def walk(plan: PlanNode):
    """Yield every node of the plan, pre-order."""
    yield plan
    for child in plan.children:
        yield from walk(child)


def contains_sampling(plan: PlanNode) -> bool:
    """True when any sampling (or GUS) node appears in the plan."""
    return any(
        isinstance(node, (TableSample, LineageSample, GUSNode))
        for node in walk(plan)
    )


def strip_sampling(plan: PlanNode) -> PlanNode:
    """Remove all sampling nodes — the exact (ground-truth) plan."""
    if isinstance(plan, (TableSample, LineageSample, GUSNode)):
        return strip_sampling(plan.child)
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, Select):
        return Select(strip_sampling(plan.child), plan.predicate)
    if isinstance(plan, Project):
        return Project(strip_sampling(plan.child), plan.outputs)
    if isinstance(plan, Join):
        return Join(
            strip_sampling(plan.left),
            strip_sampling(plan.right),
            plan.left_keys,
            plan.right_keys,
        )
    if isinstance(plan, CrossProduct):
        return CrossProduct(strip_sampling(plan.left), strip_sampling(plan.right))
    if isinstance(plan, (Union, Intersect)):
        ctor = Union if isinstance(plan, Union) else Intersect
        return ctor(strip_sampling(plan.left), strip_sampling(plan.right))
    if isinstance(plan, Aggregate):
        return Aggregate(strip_sampling(plan.child), plan.specs)
    if isinstance(plan, GroupAggregate):
        return GroupAggregate(
            strip_sampling(plan.child), plan.keys, plan.specs, plan.having
        )
    raise PlanError(f"cannot strip sampling from {type(plan).__name__}")
