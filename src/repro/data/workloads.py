"""The paper's workload queries as SQL text and plan builders.

* **Query 1** (Section 1 / Example 1): the running example — Bernoulli
  lineitem sample joined with a WOR orders sample under a price filter.
* **Figure 4 query**: the four-relation plan
  ``((lineitem ⋈ orders) ⋈ customer) ⋈ part`` with three sampled inputs
  and one unsampled (customer) input.
* **Figure 5 query**: Query 1 with a bi-dimensional Bernoulli
  sub-sampler stacked on the join output (Section 7).
"""

from __future__ import annotations

from repro.relational.expressions import col, lit
from repro.relational.plan import (
    Aggregate,
    AggSpec,
    Join,
    LineageSample,
    PlanNode,
    Scan,
    Select,
    TableSample,
)
from repro.sampling import Bernoulli, BiDimensionalBernoulli, WithoutReplacement

#: The introduction's estimation query, in the paper's SQL.
QUERY1_SQL = """
SELECT SUM(l_discount * (1.0 - l_tax)) AS revenue
FROM lineitem TABLESAMPLE (10 PERCENT),
     orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0
"""

#: The approximate-view form with explicit quantile bounds.
QUERY1_QUANTILE_SQL = """
CREATE VIEW approx (lo, hi) AS
SELECT QUANTILE(SUM(l_discount * (1.0 - l_tax)), 0.05) AS lo,
       QUANTILE(SUM(l_discount * (1.0 - l_tax)), 0.95) AS hi
FROM lineitem TABLESAMPLE (10 PERCENT),
     orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0
"""

#: The Figure 4 four-relation query.
FIGURE4_SQL = """
SELECT SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem TABLESAMPLE (10 PERCENT),
     orders TABLESAMPLE (1000 ROWS),
     customer,
     part TABLESAMPLE (50 PERCENT)
WHERE l_orderkey = o_orderkey
  AND o_custkey = c_custkey
  AND l_partkey = p_partkey
"""

#: Query 1 as an error-budget query: the optimizer picks the rates.
QUERY1_BUDGET_SQL = """
SELECT SUM(l_discount * (1.0 - l_tax)) AS revenue
FROM lineitem TABLESAMPLE (10 PERCENT),
     orders TABLESAMPLE (1000 ROWS)
WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0
WITHIN 10 % CONFIDENCE 0.95
"""

#: The same, asking for the ranked candidate table instead of execution.
QUERY1_EXPLAIN_SAMPLING_SQL = "EXPLAIN SAMPLING " + QUERY1_BUDGET_SQL.strip()

#: The revenue expression used throughout the paper.
REVENUE_EXPR = col("l_discount") * (lit(1.0) - col("l_tax"))


def query1_plan(
    lineitem_rate: float = 0.1,
    orders_rows: int = 1000,
    price_floor: float = 100.0,
) -> Aggregate:
    """Query 1 as a logical plan (Figure 2(a))."""
    join = Join(
        TableSample(Scan("lineitem"), Bernoulli(lineitem_rate)),
        TableSample(Scan("orders"), WithoutReplacement(orders_rows)),
        ["l_orderkey"],
        ["o_orderkey"],
    )
    filtered = Select(join, col("l_extendedprice") > price_floor)
    return Aggregate(filtered, [AggSpec("sum", REVENUE_EXPR, "revenue")])


def figure4_plan(
    lineitem_rate: float = 0.1,
    orders_rows: int = 1000,
    part_rate: float = 0.5,
) -> Aggregate:
    """The Figure 4(a) plan: ((l ⋈ o) ⋈ c) ⋈ p, three samplers."""
    lo = Join(
        TableSample(Scan("lineitem"), Bernoulli(lineitem_rate)),
        TableSample(Scan("orders"), WithoutReplacement(orders_rows)),
        ["l_orderkey"],
        ["o_orderkey"],
    )
    loc = Join(lo, Scan("customer"), ["o_custkey"], ["c_custkey"])
    locp = Join(
        loc,
        TableSample(Scan("part"), Bernoulli(part_rate)),
        ["l_partkey"],
        ["p_partkey"],
    )
    amount = col("l_extendedprice") * (lit(1.0) - col("l_discount"))
    return Aggregate(locp, [AggSpec("sum", amount, "revenue")])


def figure5_plan(
    lineitem_rate: float = 0.1,
    orders_rows: int = 1000,
    sub_l: float = 0.2,
    sub_o: float = 0.3,
    seed: int = 0,
    price_floor: float = 100.0,
) -> Aggregate:
    """Figure 5(c): Query 1 with a bi-dimensional Bernoulli on top."""
    join = Join(
        TableSample(Scan("lineitem"), Bernoulli(lineitem_rate)),
        TableSample(Scan("orders"), WithoutReplacement(orders_rows)),
        ["l_orderkey"],
        ["o_orderkey"],
    )
    filtered = Select(join, col("l_extendedprice") > price_floor)
    sub = LineageSample(
        filtered,
        BiDimensionalBernoulli(
            {"lineitem": sub_l, "orders": sub_o}, seed=seed
        ),
    )
    return Aggregate(sub, [AggSpec("sum", REVENUE_EXPR, "revenue")])


def single_table_plan(
    rate: float = 0.1, expression=None, alias: str = "total"
) -> Aggregate:
    """A one-relation Bernoulli SUM — the classical baseline setting."""
    expr = expression if expression is not None else col("l_extendedprice")
    return Aggregate(
        TableSample(Scan("lineitem"), Bernoulli(rate)),
        [AggSpec("sum", expr, alias)],
    )


def all_paper_plans() -> dict[str, PlanNode]:
    """Every named workload, keyed for harness iteration."""
    return {
        "query1": query1_plan(),
        "figure4": figure4_plan(),
        "figure5": figure5_plan(),
        "single_table": single_table_plan(),
    }
