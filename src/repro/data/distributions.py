"""Skewed distributions for realistic synthetic data.

Real fact tables are skewed (a few popular parts, heavy customers),
and skew is exactly what makes sampling variance interesting: the
``y_S`` terms grow with the concentration of the aggregate on few
lineage groups.  These helpers provide deterministic Zipf-like draws
without scipy's sampling (which has no generator-seeded Zipf with
bounded support).
"""

from __future__ import annotations

import numpy as np


def zipf_ranks(
    n_draws: int, n_values: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n_draws`` ranks in ``[0, n_values)`` with P(r) ∝ 1/(r+1)^α.

    ``alpha = 0`` degenerates to uniform; larger α concentrates mass on
    low ranks.  Inverse-CDF sampling over the finite support.
    """
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    weights = 1.0 / np.power(np.arange(1, n_values + 1, dtype=np.float64), alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n_draws)
    return np.searchsorted(cdf, u, side="left").astype(np.int64)


def skewed_ints(
    n_draws: int,
    n_values: int,
    rng: np.random.Generator,
    alpha: float = 0.8,
    shuffle: bool = True,
) -> np.ndarray:
    """Zipf-ranked ids with the popularity order randomly permuted.

    Without the permutation, low ids would always be the popular ones,
    which correlates popularity with insertion order — an artefact the
    shuffle removes.
    """
    ranks = zipf_ranks(n_draws, n_values, alpha, rng)
    if not shuffle:
        return ranks
    perm = rng.permutation(n_values)
    return perm[ranks]
