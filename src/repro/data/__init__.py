"""Synthetic TPC-H-style data and the paper's workload queries."""

from repro.data.distributions import skewed_ints, zipf_ranks
from repro.data.tpch import TPCH_TABLES, generate_tpch, tpch_database
from repro.data.workloads import (
    FIGURE4_SQL,
    QUERY1_SQL,
    figure4_plan,
    figure5_plan,
    query1_plan,
)

__all__ = [
    "generate_tpch",
    "tpch_database",
    "TPCH_TABLES",
    "zipf_ranks",
    "skewed_ints",
    "QUERY1_SQL",
    "FIGURE4_SQL",
    "query1_plan",
    "figure4_plan",
    "figure5_plan",
]
