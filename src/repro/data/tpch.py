"""A deterministic, scaled-down TPC-H-style generator.

The paper runs its examples on the TPC-H schema (lineitem, orders,
customer, part).  This generator reproduces the schema shape and the
foreign-key structure with realistic value distributions — skewed order
sizes, part popularity, correlated prices — at laptop scale.

Cardinalities at ``scale = 1.0`` follow TPC-H divided by 100 (so
``scale = 1.0`` ≈ 60 k lineitem rows); all draws are functions of the
seed, so any scale/seed pair regenerates identical data.
"""

from __future__ import annotations

import numpy as np

from repro.data.distributions import skewed_ints
from repro.errors import ReproError
from repro.relational.table import Table

#: Base cardinalities at scale 1.0 (TPC-H SF1 ÷ 100).
TPCH_TABLES: dict[str, int] = {
    "customer": 1_500,
    "orders": 15_000,
    "part": 2_000,
    "supplier": 100,
    "nation": 25,
    "region": 5,
}

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
_STATUS = ("F", "O", "P")


def generate_tpch(
    scale: float = 0.1, seed: int = 0
) -> dict[str, Table]:
    """Generate the full table set at the given scale factor."""
    if scale <= 0:
        raise ReproError(f"scale {scale} must be positive")
    rng = np.random.default_rng(seed)
    counts = {
        name: max(int(round(base * scale)), 5)
        for name, base in TPCH_TABLES.items()
    }
    counts["nation"] = TPCH_TABLES["nation"]
    counts["region"] = TPCH_TABLES["region"]

    tables: dict[str, Table] = {}
    tables["region"] = _region()
    tables["nation"] = _nation(rng)
    tables["supplier"] = _supplier(counts["supplier"], rng)
    tables["customer"] = _customer(counts["customer"], rng)
    tables["part"] = _part(counts["part"], rng)
    tables["orders"] = _orders(counts["orders"], counts["customer"], rng)
    tables["lineitem"] = _lineitem(
        counts["orders"], counts["part"], counts["supplier"], rng
    )
    return tables


def tpch_database(scale: float = 0.1, seed: int = 0):
    """Convenience: a :class:`~repro.relational.database.Database`
    pre-loaded with the generated tables."""
    from repro.relational.database import Database

    return Database.from_tables(generate_tpch(scale, seed), seed=seed)


def _region() -> Table:
    return Table(
        "region",
        {"r_regionkey": np.arange(5, dtype=np.int64)},
    )


def _nation(rng: np.random.Generator) -> Table:
    n = TPCH_TABLES["nation"]
    return Table(
        "nation",
        {
            "n_nationkey": np.arange(n, dtype=np.int64),
            "n_regionkey": rng.integers(0, 5, n).astype(np.int64),
        },
    )


def _supplier(n: int, rng: np.random.Generator) -> Table:
    return Table(
        "supplier",
        {
            "s_suppkey": np.arange(n, dtype=np.int64),
            "s_nationkey": rng.integers(0, 25, n).astype(np.int64),
            "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n), 2),
        },
    )


def _customer(n: int, rng: np.random.Generator) -> Table:
    return Table(
        "customer",
        {
            "c_custkey": np.arange(n, dtype=np.int64),
            "c_nationkey": rng.integers(0, 25, n).astype(np.int64),
            "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n), 2),
            "c_mktsegment": np.array(_SEGMENTS, dtype=object)[
                rng.integers(0, len(_SEGMENTS), n)
            ],
        },
    )


def _part(n: int, rng: np.random.Generator) -> Table:
    return Table(
        "part",
        {
            "p_partkey": np.arange(n, dtype=np.int64),
            "p_retailprice": np.round(
                900.0 + np.arange(n) % 1000 + rng.uniform(0, 100, n), 2
            ),
            "p_size": rng.integers(1, 51, n).astype(np.int64),
            "p_brand": np.array(_BRANDS, dtype=object)[
                rng.integers(0, len(_BRANDS), n)
            ],
        },
    )


def _orders(n: int, n_customers: int, rng: np.random.Generator) -> Table:
    # Heavy customers: order ownership is Zipf-skewed.
    custkey = skewed_ints(n, n_customers, rng, alpha=0.6)
    return Table(
        "orders",
        {
            "o_orderkey": np.arange(n, dtype=np.int64),
            "o_custkey": custkey,
            "o_totalprice": np.round(rng.lognormal(9.0, 0.6, n), 2),
            "o_orderdate": rng.integers(0, 2_400, n).astype(np.int64),
            "o_orderstatus": np.array(_STATUS, dtype=object)[
                rng.integers(0, len(_STATUS), n)
            ],
        },
    )


def _lineitem(
    n_orders: int, n_parts: int, n_suppliers: int, rng: np.random.Generator
) -> Table:
    # TPC-H gives each order 1–7 lineitems (mean 4).
    per_order = rng.integers(1, 8, n_orders)
    orderkey = np.repeat(np.arange(n_orders, dtype=np.int64), per_order)
    n = orderkey.shape[0]
    linenumber = np.concatenate(
        [np.arange(1, k + 1, dtype=np.int64) for k in per_order]
    )
    partkey = skewed_ints(n, n_parts, rng, alpha=0.8)
    quantity = rng.integers(1, 51, n).astype(np.int64)
    # Price correlates with quantity, with part-level noise.
    unit_price = rng.uniform(900.0, 2000.0, n)
    extendedprice = np.round(quantity * unit_price / 10.0, 2)
    # Keep the original draw sequence (suppkey, discount, tax,
    # shipdate) so seed-pinned datasets regenerate the same values
    # they always did; the Q1 flag columns draw after them.
    suppkey = rng.integers(0, n_suppliers, n).astype(np.int64)
    discount = np.round(rng.uniform(0.0, 0.10, n), 2)
    tax = np.round(rng.uniform(0.0, 0.08, n), 2)
    shipdate = rng.integers(0, 2_500, n).astype(np.int64)
    # Q1's grouping columns: returned/accepted flag correlates with ship
    # date (old lines are mostly resolved), line status follows it.
    old = shipdate < 1_700
    resolved = np.array(("A", "R"), dtype=object)[rng.integers(0, 2, n)]
    returnflag = np.where(old, resolved, "N").astype(object)
    linestatus = np.where(old, "F", "O").astype(object)
    return Table(
        "lineitem",
        {
            "l_orderkey": orderkey,
            "l_linenumber": linenumber,
            "l_partkey": partkey,
            "l_suppkey": suppkey,
            "l_quantity": quantity,
            "l_extendedprice": extendedprice,
            "l_discount": discount,
            "l_tax": tax,
            "l_returnflag": returnflag,
            "l_linestatus": linestatus,
            "l_shipdate": shipdate,
        },
    )
